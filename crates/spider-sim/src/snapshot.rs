//! Versioned engine snapshots for crash-safe checkpoint/resume.
//!
//! The container format (`SPSN`, mirroring the `SPBT` trace versioning rule
//! in DESIGN.md) is a fixed header followed by independently checksummed
//! sections:
//!
//! ```text
//! magic "SPSN" (4) | version u8 | engine u8 | fingerprint u32
//! | progress u64 | section_count u32
//! then per section: tag u32 | len u64 | crc32 u32 | bytes
//! ```
//!
//! - **version** is bumped on any layout change; readers reject files from
//!   the future with a structured error instead of misparsing them.
//! - **engine** identifies which engine wrote the snapshot
//!   ([`ENGINE_SEQ`], [`ENGINE_QUEUED`], [`ENGINE_SHARDED`]); resuming with
//!   the wrong engine is an error, not a crash.
//! - **fingerprint** is a CRC-32 over the simulation inputs (network shape,
//!   transaction trace, key config fields). Resume recomputes it from its
//!   own inputs and rejects a mismatch, so a snapshot can never be applied
//!   to a different scenario.
//! - **progress** is the engine's own cadence counter (scheduler ticks for
//!   the event-driven engines, BSP epochs for the sharded engine); it
//!   orders snapshot files within a directory.
//!
//! Writes are crash-safe: the file is staged under a temporary name in the
//! target directory, fsynced, atomically renamed into place, and the
//! directory itself is fsynced — a reader never observes a half-written
//! snapshot, and a `kill -9` mid-write leaves at most a stale `.tmp` that
//! [`latest_snapshot`] ignores.
//!
//! Decoding never panics. Truncated, bit-flipped, or otherwise corrupt
//! files surface as [`SnapshotError`] values.

use serde::{Deserialize, Serialize};
use spider_core::{crc32, BinError, Dec, Enc, Network};
use spider_telemetry::TelemetryState;
use spider_workload::Transaction;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Current snapshot format version. Bump on any layout change.
/// v2: sharded messages carry the unit's deadline epoch, sample partials
/// carry a queue depth, and sharded snapshots gain a [`SEC_SHARD_EXT`]
/// section (queues, fee accrual, congestion windows, rebalance schedule).
pub const FORMAT_VERSION: u8 = 2;

/// File magic: "SPSN" (SPider SNapshot).
pub const MAGIC: [u8; 4] = *b"SPSN";

/// Engine kind byte: the sequential event-driven engine ([`crate::run`]).
pub const ENGINE_SEQ: u8 = 1;
/// Engine kind byte: the router-queued engine ([`crate::run_queued`]).
pub const ENGINE_QUEUED: u8 = 2;
/// Engine kind byte: the partition-parallel engine ([`crate::run_sharded`]).
pub const ENGINE_SHARDED: u8 = 3;

/// Pseudo-section id used in [`SnapshotError::CrcMismatch`] when the
/// *frame* checksum fails — the trailing CRC over the whole file that
/// protects the header and section framing.
pub const SEC_FRAME: u32 = 0;

/// Section tag: engine-specific core state.
pub const SEC_CORE: u32 = 1;
/// Section tag: routing-scheme state (may be empty for stateless schemes).
pub const SEC_SCHEME: u32 = 2;
/// Section tag: telemetry state (absent when telemetry is disabled).
pub const SEC_TELEMETRY: u32 = 3;
/// Section tag: sharded-engine feature extensions — per-shard router
/// queues, fee accrual, congestion windows, and the rebalance schedule.
pub const SEC_SHARD_EXT: u32 = 4;

/// Why a snapshot could not be written, read, or applied.
///
/// Every failure mode is a structured variant — corrupt or truncated input
/// never panics the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Which operation (`"create"`, `"write"`, `"rename"`, ...).
        op: &'static str,
        /// The underlying error, stringified.
        error: String,
    },
    /// The file does not start with the `SPSN` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file was written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// Version byte in the file.
        found: u8,
        /// Highest version this build understands.
        supported: u8,
    },
    /// The snapshot was written by a different engine.
    WrongEngine {
        /// Engine kind expected by the caller.
        expected: u8,
        /// Engine kind recorded in the file.
        found: u8,
    },
    /// The snapshot was taken from different simulation inputs.
    ConfigMismatch {
        /// Fingerprint recomputed from the caller's inputs.
        expected: u32,
        /// Fingerprint recorded in the file.
        found: u32,
    },
    /// A section's checksum does not match its bytes.
    CrcMismatch {
        /// Section tag.
        section: u32,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the section bytes.
        computed: u32,
    },
    /// A required section is missing.
    MissingSection {
        /// The absent section tag.
        section: u32,
    },
    /// The file (or a section) is structurally invalid.
    Corrupt {
        /// What was wrong.
        what: String,
    },
    /// The snapshot is valid but cannot be applied by this configuration
    /// (e.g. a scheme or telemetry handle that does not support restore).
    Unsupported {
        /// What is not supported.
        what: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, op, error } => {
                write!(f, "snapshot {op} failed for {}: {error}", path.display())
            }
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot file: bad magic {found:02x?}")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            SnapshotError::WrongEngine { expected, found } => write!(
                f,
                "snapshot was written by engine kind {found}, expected {expected}"
            ),
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#010x} does not match these inputs ({expected:#010x})"
            ),
            SnapshotError::CrcMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section {section} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section {section}")
            }
            SnapshotError::Corrupt { what } => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Unsupported { what } => write!(f, "cannot resume: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<BinError> for SnapshotError {
    fn from(err: BinError) -> Self {
        SnapshotError::Corrupt {
            what: err.to_string(),
        }
    }
}

/// Periodic-checkpoint policy for a run.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// Checkpoint cadence in engine progress units (scheduler ticks for the
    /// event-driven engines, BSP epochs for the sharded engine). Clamped to
    /// at least 1.
    pub every: u64,
    /// Directory snapshot files are written into (created on demand).
    pub dir: PathBuf,
}

impl CheckpointSpec {
    /// A spec checkpointing every `every` progress units into `dir`.
    pub fn new(every: u64, dir: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            every: every.max(1),
            dir: dir.into(),
        }
    }
}

/// A decoded snapshot container: header fields plus verified sections.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Engine kind byte ([`ENGINE_SEQ`] / [`ENGINE_QUEUED`] / [`ENGINE_SHARDED`]).
    pub engine: u8,
    /// Input fingerprint recorded at capture time.
    pub fingerprint: u32,
    /// Engine progress counter at capture time.
    pub progress: u64,
    /// `(tag, bytes)` pairs, CRC-verified, in file order.
    pub sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// The bytes of section `tag`, or a [`SnapshotError::MissingSection`].
    pub fn section(&self, tag: u32) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, b)| b.as_slice())
            .ok_or(SnapshotError::MissingSection { section: tag })
    }

    /// The bytes of section `tag`, or `None` when absent.
    pub fn section_opt(&self, tag: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, b)| b.as_slice())
    }

    /// Verifies this snapshot belongs to `engine` with `fingerprint`.
    pub fn check(&self, engine: u8, fingerprint: u32) -> Result<(), SnapshotError> {
        if self.engine != engine {
            return Err(SnapshotError::WrongEngine {
                expected: engine,
                found: self.engine,
            });
        }
        if self.fingerprint != fingerprint {
            return Err(SnapshotError::ConfigMismatch {
                expected: fingerprint,
                found: self.fingerprint,
            });
        }
        Ok(())
    }
}

/// Encodes a snapshot container to bytes.
pub fn encode_snapshot(
    engine: u8,
    fingerprint: u32,
    progress: u64,
    sections: &[(u32, Vec<u8>)],
) -> Vec<u8> {
    let mut e = Enc::new();
    for b in MAGIC {
        e.u8(b);
    }
    e.u8(FORMAT_VERSION);
    e.u8(engine);
    e.u32(fingerprint);
    e.u64(progress);
    e.u32(sections.len() as u32);
    for (tag, bytes) in sections {
        e.u32(*tag);
        e.u64(bytes.len() as u64);
        e.u32(crc32(bytes));
        e.bytes_raw(bytes);
    }
    // Frame CRC over everything above: the per-section checksums cover the
    // payloads, this one covers the header and section framing too, so a
    // bit flip anywhere in the file is detected.
    let mut out = e.into_bytes();
    let frame = crc32(&out);
    out.extend_from_slice(&frame.to_le_bytes());
    out
}

/// Decodes and CRC-verifies a snapshot container.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    // Magic and version are checked on the raw prefix first so a
    // wrong-filetype or future-version file gets its specific error rather
    // than a generic checksum failure.
    if bytes.len() < 4 {
        return Err(SnapshotError::Corrupt {
            what: "file shorter than the magic".to_string(),
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[..4]);
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic { found: magic });
    }
    let Some(&version) = bytes.get(4) else {
        return Err(SnapshotError::Corrupt {
            what: "file ends before the version byte".to_string(),
        });
    };
    if version > FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    // The last four bytes are a frame CRC over everything before them,
    // covering the header and section framing that the per-section
    // checksums do not.
    if bytes.len() < 9 {
        return Err(SnapshotError::Corrupt {
            what: "file ends before the frame checksum".to_string(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let mut stored_frame = [0u8; 4];
    stored_frame.copy_from_slice(tail);
    let stored_frame = u32::from_le_bytes(stored_frame);
    let computed_frame = crc32(body);
    if computed_frame != stored_frame {
        return Err(SnapshotError::CrcMismatch {
            section: SEC_FRAME,
            stored: stored_frame,
            computed: computed_frame,
        });
    }
    let mut d = Dec::new(body);
    d.take_raw(5).map_err(|_| SnapshotError::Corrupt {
        what: "file shorter than the header".to_string(),
    })?;
    let engine = d.u8()?;
    let fingerprint = d.u32()?;
    let progress = d.u64()?;
    let count = d.u32()?;
    let mut sections = Vec::new();
    for _ in 0..count {
        let tag = d.u32()?;
        let len = d.u64()?;
        let stored = d.u32()?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Corrupt {
            what: format!("section {tag} length {len} exceeds usize"),
        })?;
        if len > d.remaining() {
            return Err(SnapshotError::Corrupt {
                what: format!(
                    "section {tag} claims {len} bytes but only {} remain",
                    d.remaining()
                ),
            });
        }
        let body = d.take_raw(len)?;
        let computed = crc32(body);
        if computed != stored {
            return Err(SnapshotError::CrcMismatch {
                section: tag,
                stored,
                computed,
            });
        }
        sections.push((tag, body.to_vec()));
    }
    d.expect_end()?;
    Ok(Snapshot {
        engine,
        fingerprint,
        progress,
        sections,
    })
}

fn io_err(path: &Path, op: &'static str, error: std::io::Error) -> SnapshotError {
    SnapshotError::Io {
        path: path.to_path_buf(),
        op,
        error: error.to_string(),
    }
}

/// Writes a snapshot crash-safely into `dir` and returns its path.
///
/// The bytes are staged under a dot-prefixed `.tmp` name, fsynced, renamed
/// atomically to `snap-<progress>.spsn`, and the directory is fsynced so
/// the rename itself is durable. A crash at any point leaves either the
/// previous snapshot set intact or the new file complete — never a torn
/// file under the final name.
pub fn write_snapshot(
    dir: &Path,
    engine: u8,
    fingerprint: u32,
    progress: u64,
    sections: &[(u32, Vec<u8>)],
) -> Result<PathBuf, SnapshotError> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, "create-dir", e))?;
    let bytes = encode_snapshot(engine, fingerprint, progress, sections);
    let name = format!("snap-{progress:012}.spsn");
    let tmp = dir.join(format!(".{name}.tmp"));
    let path = dir.join(&name);
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
        f.write_all(&bytes).map_err(|e| io_err(&tmp, "write", e))?;
        f.sync_all().map_err(|e| io_err(&tmp, "fsync", e))?;
    }
    fs::rename(&tmp, &path).map_err(|e| io_err(&path, "rename", e))?;
    // Make the rename durable: fsync the containing directory.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// Reads and CRC-verifies a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, "read", e))?;
    decode_snapshot(&bytes)
}

/// The newest fully valid snapshot in `dir` (by progress counter), or
/// `None` when the directory holds no usable snapshot.
///
/// Files that fail magic, version, or CRC validation — e.g. a snapshot torn
/// by power loss on a filesystem without atomic rename — are skipped, so a
/// crash harness always lands on the most recent *consistent* state.
pub fn latest_snapshot(dir: &Path) -> Result<Option<PathBuf>, SnapshotError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(dir, "read-dir", e)),
    };
    let mut candidates: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "spsn")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("snap-"))
        })
        .collect();
    candidates.sort();
    for path in candidates.into_iter().rev() {
        if read_snapshot(&path).is_ok() {
            return Ok(Some(path));
        }
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// Shared encoding helpers for the engines.

/// JSON-encodes `v` as a length-prefixed string (used for serde types whose
/// floats are always finite: trace events, audit violations, fault stats).
pub(crate) fn enc_json<T: Serialize>(e: &mut Enc, v: &T) {
    // Serialization of plain data structs cannot fail; an empty string
    // would be rejected at decode, which is the safe direction.
    e.str(&serde_json::to_string(v).unwrap_or_default());
}

/// Decodes a value encoded by [`enc_json`].
pub(crate) fn dec_json<T: Deserialize>(d: &mut Dec) -> Result<T, SnapshotError> {
    let s = d.str()?;
    serde_json::from_str(&s).map_err(|e| SnapshotError::Corrupt {
        what: format!("embedded JSON: {e}"),
    })
}

/// Encodes an optional telemetry state; `None` (telemetry disabled) encodes
/// as an empty section. Float-valued registry fields (histogram extrema are
/// `±INFINITY` when empty) travel as raw bits; the event buffer is JSON
/// (trace-event floats are always finite simulation times).
pub(crate) fn encode_telemetry(state: &Option<TelemetryState>) -> Vec<u8> {
    let Some(s) = state else {
        return Vec::new();
    };
    let mut e = Enc::new();
    e.f64(s.sample_interval);
    e.bool(s.profiled);
    e.seq(&s.registry.counters, |e, (name, label, v)| {
        e.str(name);
        e.str(label);
        e.u64(*v);
    });
    e.seq(&s.registry.gauges, |e, (name, label, v)| {
        e.str(name);
        e.str(label);
        e.f64(*v);
    });
    e.seq(&s.registry.histograms, |e, (name, label, h)| {
        e.str(name);
        e.str(label);
        e.seq(&h.bounds, |e, &b| e.f64(b));
        e.seq(&h.counts, |e, &c| e.u64(c));
        e.u64(h.count);
        e.f64(h.sum);
        e.f64(h.min);
        e.f64(h.max);
    });
    enc_json(&mut e, &s.events);
    e.into_bytes()
}

/// Decodes a telemetry section written by [`encode_telemetry`].
pub(crate) fn decode_telemetry(bytes: &[u8]) -> Result<Option<TelemetryState>, SnapshotError> {
    if bytes.is_empty() {
        return Ok(None);
    }
    let mut d = Dec::new(bytes);
    let sample_interval = d.f64()?;
    let profiled = d.bool()?;
    let counters = d.seq(|d| Ok((d.str()?, d.str()?, d.u64()?)))?;
    let gauges = d.seq(|d| Ok((d.str()?, d.str()?, d.f64()?)))?;
    let histograms = d.seq(|d| {
        let name = d.str()?;
        let label = d.str()?;
        let bounds = d.seq(|d| d.f64())?;
        let counts = d.seq(|d| d.u64())?;
        Ok((
            name,
            label,
            spider_telemetry::HistogramState {
                bounds,
                counts,
                count: d.u64()?,
                sum: d.f64()?,
                min: d.f64()?,
                max: d.f64()?,
            },
        ))
    })?;
    let events = dec_json(&mut d)?;
    d.expect_end()?;
    Ok(Some(TelemetryState {
        sample_interval,
        profiled,
        registry: spider_telemetry::RegistryState {
            counters,
            gauges,
            histograms,
        },
        events,
    }))
}

/// Feeds the shared simulation inputs — network shape and the transaction
/// trace — into a fingerprint encoder. Engines append their own config
/// fields and hash the result with [`crc32`].
pub(crate) fn enc_inputs(e: &mut Enc, network: &Network, transactions: &[Transaction]) {
    e.usize(network.num_nodes());
    e.usize(network.num_channels());
    for ch in network.channels() {
        e.u32(ch.a.0);
        e.u32(ch.b.0);
        e.i64(ch.balance_a.micros());
        e.i64(ch.balance_b.micros());
    }
    e.usize(transactions.len());
    for tx in transactions {
        e.u64(tx.id.0);
        e.u32(tx.src.0);
        e.u32(tx.dst.0);
        e.i64(tx.amount.micros());
        e.f64(tx.arrival);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sections() -> Vec<(u32, Vec<u8>)> {
        vec![
            (SEC_CORE, b"core-bytes".to_vec()),
            (SEC_SCHEME, Vec::new()),
            (SEC_TELEMETRY, b"tel".to_vec()),
        ]
    }

    #[test]
    fn container_round_trips() {
        let bytes = encode_snapshot(ENGINE_SEQ, 0xABCD_1234, 42, &sections());
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap.engine, ENGINE_SEQ);
        assert_eq!(snap.fingerprint, 0xABCD_1234);
        assert_eq!(snap.progress, 42);
        assert_eq!(snap.section(SEC_CORE).unwrap(), b"core-bytes");
        assert_eq!(snap.section(SEC_SCHEME).unwrap(), b"");
        assert_eq!(snap.section_opt(SEC_TELEMETRY), Some(&b"tel"[..]));
        assert!(matches!(
            snap.section(99),
            Err(SnapshotError::MissingSection { section: 99 })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_snapshot(ENGINE_SEQ, 1, 1, &sections());
        bytes[0] = b'X';
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_snapshot(ENGINE_SEQ, 1, 1, &sections());
        bytes[4] = FORMAT_VERSION + 1;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        let bytes = encode_snapshot(ENGINE_QUEUED, 7, 3, &sections());
        for cut in 0..bytes.len() {
            let r = decode_snapshot(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail, got {r:?}");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        // Flipping any single bit anywhere — header, section framing,
        // payload, or the checksums themselves — must be rejected with a
        // structured error: the per-section CRCs cover the payloads and the
        // trailing frame CRC covers everything else.
        let bytes = encode_snapshot(ENGINE_SEQ, 0, 5, &sections());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                let r = decode_snapshot(&bad);
                assert!(r.is_err(), "undetected corruption at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn wrong_engine_and_fingerprint_checks() {
        let bytes = encode_snapshot(ENGINE_SEQ, 10, 1, &sections());
        let snap = decode_snapshot(&bytes).unwrap();
        assert!(snap.check(ENGINE_SEQ, 10).is_ok());
        assert!(matches!(
            snap.check(ENGINE_QUEUED, 10),
            Err(SnapshotError::WrongEngine { .. })
        ));
        assert!(matches!(
            snap.check(ENGINE_SEQ, 11),
            Err(SnapshotError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn atomic_write_and_latest() {
        let dir = std::env::temp_dir().join(format!("spsn-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(latest_snapshot(&dir).unwrap(), None);
        let p1 = write_snapshot(&dir, ENGINE_SEQ, 1, 10, &sections()).unwrap();
        let p2 = write_snapshot(&dir, ENGINE_SEQ, 1, 20, &sections()).unwrap();
        assert!(p1.exists() && p2.exists());
        assert_eq!(latest_snapshot(&dir).unwrap(), Some(p2.clone()));
        // A corrupt newest file falls back to the previous valid one.
        let p3 = dir.join("snap-000000000030.spsn");
        fs::write(&p3, b"SPSNgarbage").unwrap();
        assert_eq!(latest_snapshot(&dir).unwrap(), Some(p2));
        // Stale tmp files are ignored.
        fs::write(dir.join(".snap-000000000040.spsn.tmp"), b"partial").unwrap();
        assert!(latest_snapshot(&dir).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_state_none_round_trips() {
        let bytes = encode_telemetry(&None);
        assert!(bytes.is_empty());
        assert_eq!(decode_telemetry(&bytes).unwrap(), None);
    }
}
