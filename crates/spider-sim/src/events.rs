//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)` — the sequence number breaks
//! time ties in insertion order, so runs are exactly reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A strictly ordered event timestamp (seconds). NaN is rejected at
/// construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Time(f64);

impl Time {
    /// Wraps a finite timestamp.
    ///
    /// # Panics
    /// Panics on NaN or infinite values.
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite(), "event time must be finite, got {t}");
        Time(t)
    }

    /// The timestamp in seconds.
    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("Time is always finite")
    }
}

struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour in BinaryHeap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered event queue with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at time `t` (seconds).
    pub fn push(&mut self, t: f64, event: E) {
        let entry = Entry {
            time: Time::new(t),
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        self.heap.push(entry);
    }

    /// Removes and returns the earliest event with its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time.seconds(), e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time.seconds())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The sequence number the next [`push`](Self::push) will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every pending entry as `(time, seq, &event)`, sorted by
    /// `(time, seq)` — exactly the order [`pop`](Self::pop) would drain
    /// them. Non-destructive, for checkpointing.
    pub fn entries(&self) -> Vec<(f64, u64, &E)> {
        let mut v: Vec<(f64, u64, &E)> = self
            .heap
            .iter()
            .map(|e| (e.time.seconds(), e.seq, &e.event))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        v
    }

    /// Schedules `event` at `t` with an explicit sequence number, advancing
    /// the internal counter past it. Restore path for
    /// [`entries`](Self::entries): re-pushing captured entries with their
    /// original sequence numbers reproduces the exact drain order.
    pub fn push_with_seq(&mut self, t: f64, seq: u64, event: E) {
        self.heap.push(Entry {
            time: Time::new(t),
            seq,
            event,
        });
        self.next_seq = self.next_seq.max(seq + 1);
    }

    /// Raises the next-sequence counter to at least `seq` (restore path;
    /// never lowers it, so future pushes cannot collide with restored
    /// entries).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        q.push(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(5.0, ());
        q.push(2.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(4.0, 4);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.push(2.0, 2);
        q.push(3.0, 3);
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((4.0, 4)));
    }
}
