//! End-host congestion control (§4.1 extension).
//!
//! The paper leaves congestion control to future work but sketches the
//! design space: hosts adapt their sending rate from implicit signals. This
//! module implements the classic AIMD window — each sender/receiver pair
//! may have at most `⌊window⌋` transaction units in flight; every settled
//! unit grows the window additively (`w += a/w`, TCP-style), every failed
//! route attempt shrinks it multiplicatively. The engine enforces the
//! window when [`crate::SimConfig::congestion`] is set.

use serde::{Deserialize, Serialize};
use spider_core::{NodeId, PairTable};

/// AIMD parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CongestionConfig {
    /// Initial window (units in flight) per pair.
    pub initial_window: f64,
    /// Additive increase per settled unit (applied as `w += a / w`).
    pub additive_increase: f64,
    /// Multiplicative decrease factor on a failed route attempt.
    pub multiplicative_decrease: f64,
    /// Window floor.
    pub min_window: f64,
    /// Window ceiling.
    pub max_window: f64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            initial_window: 4.0,
            additive_increase: 1.0,
            multiplicative_decrease: 0.5,
            min_window: 1.0,
            max_window: 256.0,
        }
    }
}

impl CongestionConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on nonsensical values (used by the engine at startup).
    pub fn validate(&self) {
        assert!(self.min_window >= 1.0, "min_window must be at least 1");
        assert!(
            self.max_window >= self.min_window,
            "max_window < min_window"
        );
        assert!(
            self.initial_window >= self.min_window && self.initial_window <= self.max_window,
            "initial_window out of range"
        );
        assert!(
            self.additive_increase > 0.0,
            "additive_increase must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.multiplicative_decrease),
            "multiplicative_decrease must be in (0, 1)"
        );
    }
}

#[derive(Clone, Copy, Debug)]
struct PairState {
    window: f64,
    outstanding: u32,
}

/// Per-pair AIMD window table.
#[derive(Clone, Debug)]
pub struct CongestionControl {
    config: CongestionConfig,
    pairs: PairTable<PairState>,
}

impl CongestionControl {
    /// Creates the controller.
    pub fn new(config: CongestionConfig) -> Self {
        config.validate();
        CongestionControl {
            config,
            pairs: PairTable::new(),
        }
    }

    fn state(&mut self, src: NodeId, dst: NodeId) -> &mut PairState {
        let init = self.config.initial_window;
        self.pairs.entry_or_insert_with(src, dst, || PairState {
            window: init,
            outstanding: 0,
        })
    }

    /// `true` if the pair may put one more unit in flight.
    pub fn may_send(&mut self, src: NodeId, dst: NodeId) -> bool {
        let s = self.state(src, dst);
        (s.outstanding as f64) < s.window.floor()
    }

    /// Records a unit entering flight.
    pub fn on_send(&mut self, src: NodeId, dst: NodeId) {
        self.state(src, dst).outstanding += 1;
    }

    /// Records a settled unit: releases window occupancy and grows the
    /// window additively.
    pub fn on_settle(&mut self, src: NodeId, dst: NodeId) {
        let (a, max) = (self.config.additive_increase, self.config.max_window);
        let s = self.state(src, dst);
        debug_assert!(s.outstanding > 0, "settle without outstanding unit");
        s.outstanding = s.outstanding.saturating_sub(1);
        s.window = (s.window + a / s.window).min(max);
    }

    /// Records a failed route attempt: shrinks the window.
    pub fn on_unavailable(&mut self, src: NodeId, dst: NodeId) {
        let (beta, min) = (self.config.multiplicative_decrease, self.config.min_window);
        let s = self.state(src, dst);
        s.window = (s.window * beta).max(min);
    }

    /// Current window for a pair (for diagnostics).
    pub fn window(&self, src: NodeId, dst: NodeId) -> f64 {
        self.pairs
            .get(src, dst)
            .map(|s| s.window)
            .unwrap_or(self.config.initial_window)
    }

    /// Units currently in flight for a pair.
    pub fn outstanding(&self, src: NodeId, dst: NodeId) -> u32 {
        self.pairs.get(src, dst).map(|s| s.outstanding).unwrap_or(0)
    }

    /// Every tracked pair as `(src, dst, window, outstanding)` in
    /// `(src, dst)` order, for checkpointing.
    pub fn export_state(&self) -> Vec<(NodeId, NodeId, f64, u32)> {
        self.pairs
            .iter()
            .map(|(s, d, st)| (s, d, st.window, st.outstanding))
            .collect()
    }

    /// Replaces the pair table with entries captured by
    /// [`export_state`](Self::export_state). Untracked pairs fall back to
    /// the initial window, as they would in a fresh run.
    pub fn restore_state(&mut self, entries: &[(NodeId, NodeId, f64, u32)]) {
        self.pairs = PairTable::new();
        for &(s, d, window, outstanding) in entries {
            *self.state(s, d) = PairState {
                window,
                outstanding,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (NodeId, NodeId) {
        (NodeId(0), NodeId(1))
    }

    #[test]
    fn window_gates_sending() {
        let mut cc = CongestionControl::new(CongestionConfig {
            initial_window: 2.0,
            ..Default::default()
        });
        let (s, d) = pair();
        assert!(cc.may_send(s, d));
        cc.on_send(s, d);
        assert!(cc.may_send(s, d));
        cc.on_send(s, d);
        assert!(!cc.may_send(s, d), "window of 2 filled");
        cc.on_settle(s, d);
        assert!(cc.may_send(s, d), "settle frees a slot");
    }

    #[test]
    fn additive_increase_on_settle() {
        let mut cc = CongestionControl::new(CongestionConfig::default());
        let (s, d) = pair();
        let w0 = cc.window(s, d);
        cc.on_send(s, d);
        cc.on_settle(s, d);
        let w1 = cc.window(s, d);
        assert!(w1 > w0);
        assert!((w1 - (w0 + 1.0 / w0)).abs() < 1e-12);
    }

    #[test]
    fn multiplicative_decrease_on_failure() {
        let mut cc = CongestionControl::new(CongestionConfig::default());
        let (s, d) = pair();
        let w0 = cc.window(s, d);
        cc.on_unavailable(s, d);
        assert!((cc.window(s, d) - w0 * 0.5).abs() < 1e-12);
        // Repeated failures floor at min_window.
        for _ in 0..20 {
            cc.on_unavailable(s, d);
        }
        assert_eq!(cc.window(s, d), 1.0);
        assert!(cc.may_send(s, d), "floor still admits one unit");
    }

    #[test]
    fn window_capped_at_max() {
        let mut cc = CongestionControl::new(CongestionConfig {
            max_window: 5.0,
            ..Default::default()
        });
        let (s, d) = pair();
        for _ in 0..100 {
            cc.on_send(s, d);
            cc.on_settle(s, d);
        }
        assert!(cc.window(s, d) <= 5.0);
    }

    #[test]
    fn pairs_are_independent() {
        let mut cc = CongestionControl::new(CongestionConfig::default());
        cc.on_unavailable(NodeId(0), NodeId(1));
        assert!(cc.window(NodeId(0), NodeId(1)) < cc.window(NodeId(2), NodeId(3)));
        assert_eq!(cc.outstanding(NodeId(2), NodeId(3)), 0);
    }

    #[test]
    #[should_panic(expected = "multiplicative_decrease")]
    fn validate_rejects_bad_beta() {
        CongestionConfig {
            multiplicative_decrease: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
