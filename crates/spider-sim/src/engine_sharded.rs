//! The partition-parallel (sharded) simulation engine.
//!
//! One simulation is split across `partition.num_shards()` OS threads
//! advancing in **lockstep epochs** of [`EPOCH`] seconds (a BSP loop with
//! two [`std::sync::Barrier`] crossings per epoch). Each shard owns
//!
//! - the **payments** whose id hashes to it (`payment_id % num_shards` —
//!   topology-free, so sender skew cannot imbalance the pump work), and
//! - the **ledger slots** of the channels the
//!   [`Partition`](spider_topology::Partition) assigns to it: only the
//!   owner shard ever mutates a channel's two balances, enforced at run
//!   time by the [`ForeignSlotMutation`](crate::audit::AuditViolationKind)
//!   guard in debug *and* release builds.
//!
//! Transaction units travel hop by hop as messages: the payment owner
//! routes a unit against a barrier-frozen balance snapshot and sends a
//! lock request to the first hop's owner; each successful hop lock
//! forwards to the next owner one epoch later; the final hop schedules
//! settles (or a fault schedules refunds) on every hop owner plus a
//! notification to the payment owner. Within an epoch every shard
//! processes its due messages in a globally deterministic
//! `(kind, payment, unit, hop)` order, and all cross-shard state (balance
//! snapshots, messages) is exchanged only at barriers.
//!
//! **Partition independence** is the engine's defining property: handlers
//! touch only state they own, cross-shard reads go through the frozen
//! snapshot, and every merge at the end of the run (trace, report sums,
//! histograms) is keyed by content, never by thread arrival order. The
//! merged [`SimReport`] and trace are therefore *byte-identical* at any
//! shard count — `tests/shard_equivalence.rs` locks this down against
//! shard counts {1, 2, 4, 7}.
//!
//! The sharded engine supports the full sequential feature set: the core
//! packet-switched loop (waterfilling / shortest-path routing, deadlines,
//! fault injection with sender retry, auditing, telemetry) plus the
//! extensions that used to be sequential-engine-only, each mapped onto an
//! unambiguous owner so partition independence survives:
//!
//! - **Router queues** ([`ShardPolicy::Queued`]): a unit that cannot lock
//!   a hop waits in a per-`(channel, direction)` queue *at the channel's
//!   owner shard* instead of failing. Queues drain head-of-line each epoch
//!   in [`QueuePolicy`] order; queued units ride out outages and expire at
//!   their payment's deadline.
//! - **Fees**: hop amounts are a pure function of the fee schedule and the
//!   unit's path, computed at send time and recomputed on message decode;
//!   the payment owner accrues `routing_fees_paid` when a unit settles.
//! - **Congestion control**: a per-payment AIMD window at the payment
//!   owner gates how many units may be outstanding, driven by the same
//!   delivered/failed notifications that already flow to the owner.
//! - **Rebalancing**: each shard checks and corrects only the channels it
//!   owns, publishing the new balances through the ordinary dirty-balance
//!   exchange; scheduled corrections are part of the shard checkpoint.

use crate::audit::{AuditState, AuditViolation, AuditViolationKind, LedgerAudit};
use crate::congestion::CongestionConfig;
use crate::engine::record_release;
use crate::engine::{dec_path, enc_fault_event, enc_path};
use crate::engine_queued::QueuePolicy;
use crate::faults::{FaultConfig, FaultEvent, FaultPlan, FaultState, FaultStats, SplitMix64};
use crate::ledger::Ledger;
use crate::metrics::SimReport;
use crate::payment::PaymentStatus;
use crate::rebalancer::{RebalancePolicy, RebalanceStats};
use crate::scheduler::SchedulePolicy;
use crate::snapshot::{self, CheckpointSpec, SnapshotError};
use serde::{Deserialize, Serialize};
use spider_core::{
    crc32, Amount, BalanceView, ChannelId, Dec, Direction, Enc, Network, NodeId, Path,
};
use spider_routing::{
    FeeSchedule, RoutingScheme, ShortestPathScheme, UnitDecision, WaterfillingScheme,
};
use spider_telemetry::{Histogram, HistogramSnapshot, NetworkSample, Phase, Telemetry, TraceEvent};
use spider_topology::Partition;
use spider_workload::Transaction;
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier, Mutex};

/// Epoch width in simulation seconds: the lockstep window all shards
/// advance by together. One hop lock, one message delay.
pub const EPOCH: f64 = 0.05;

/// Routing scheme selector for the sharded engine. Each shard instantiates
/// its own scheme; path caches are pure functions of the topology, so
/// per-shard instances route identically regardless of the partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardScheme {
    /// Cached BFS shortest path per pair.
    ShortestPath,
    /// The paper's waterfilling heuristic over 4 edge-disjoint paths.
    Waterfilling,
}

impl ShardScheme {
    fn build(&self) -> Box<dyn RoutingScheme> {
        match self {
            ShardScheme::ShortestPath => Box::new(ShortestPathScheme::new()),
            ShardScheme::Waterfilling => Box::new(WaterfillingScheme::new()),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ShardScheme::ShortestPath => "sharded-shortest-path",
            ShardScheme::Waterfilling => "sharded-waterfilling",
        }
    }
}

/// What a unit does when a hop lock cannot be granted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Circuit-style: a failed lock refunds the unit immediately (the
    /// original sharded-engine behavior).
    #[default]
    Direct,
    /// Packet-style: the unit waits in a router queue at the channel's
    /// owner shard and retries head-of-line each epoch until its
    /// payment's deadline.
    Queued,
}

impl ShardPolicy {
    fn name(&self) -> &'static str {
        match self {
            ShardPolicy::Direct => "direct",
            ShardPolicy::Queued => "queued",
        }
    }
}

/// Configuration for [`run_sharded`]. Mirrors the sequential
/// [`SimConfig`](crate::SimConfig) core; durations are quantized to whole
/// epochs internally.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Hard end of the measurement window (seconds).
    pub end_time: f64,
    /// Settlement delay Δ (seconds); the paper uses 0.5.
    pub delta: f64,
    /// Maximum transaction unit.
    pub mtu: Amount,
    /// Scheduler poll interval (seconds).
    pub poll_interval: f64,
    /// Per-payment deadline window (seconds after arrival).
    pub deadline: f64,
    /// Routing scheme run by every payment owner.
    pub scheme: ShardScheme,
    /// Record a `(time, success_ratio, success_volume)` sample per tick.
    pub record_series: bool,
    /// Audit every shard's ledger copy once per epoch plus once at the end.
    pub audit: bool,
    /// Optional deterministic fault injection (outages, churn, drops,
    /// griefing, jitter, sender retry policy).
    pub faults: Option<FaultPlan>,
    /// Telemetry handle; when enabled, per-shard traces are merged into a
    /// deterministic global trace at the end of the run.
    pub telemetry: Telemetry,
    /// What a unit does when a hop lock fails: refund ([`ShardPolicy::Direct`])
    /// or wait in the owner shard's router queue ([`ShardPolicy::Queued`]).
    pub policy: ShardPolicy,
    /// How each payment owner orders its pending payments when pumping
    /// under [`ShardPolicy::Queued`] (`Direct` keeps arrival order).
    pub source_policy: SchedulePolicy,
    /// Service order within a router queue under [`ShardPolicy::Queued`].
    pub queue_policy: QueuePolicy,
    /// Hard cap per `(channel, direction)` router queue; a unit arriving
    /// at a full queue fails as a liquidity refusal.
    pub max_queue_len: usize,
    /// Optional per-channel fee schedule; hop amounts then carry the
    /// downstream fees and settled units accrue `routing_fees_paid`.
    pub fees: Option<FeeSchedule>,
    /// Optional per-payment AIMD window limiting outstanding units.
    pub congestion: Option<CongestionConfig>,
    /// Optional on-chain rebalancing of owned channels.
    pub rebalance: Option<RebalancePolicy>,
}

impl ShardedConfig {
    /// The paper's defaults with the given measurement window.
    pub fn new(end_time: f64) -> Self {
        ShardedConfig {
            end_time,
            delta: 0.5,
            mtu: Amount::from_whole(10),
            poll_interval: 0.1,
            deadline: 5.0,
            scheme: ShardScheme::Waterfilling,
            record_series: false,
            audit: false,
            faults: None,
            telemetry: Telemetry::disabled(),
            policy: ShardPolicy::Direct,
            source_policy: SchedulePolicy::Srpt,
            queue_policy: QueuePolicy::Fifo,
            max_queue_len: 4096,
            fees: None,
            congestion: None,
            rebalance: None,
        }
    }
}

/// Converts an exact fixed-point amount to display tokens — the single
/// conversion point for every report/trace value this engine emits.
fn tokens(a: Amount) -> f64 {
    // spider-lint: allow(money-safety) — one conversion boundary for reports/traces
    a.as_tokens()
}

/// Simulation time of an epoch. The product is the *only* way epochs
/// become seconds, so every shard computes identical timestamps.
#[inline]
fn t_of(epoch: u64) -> f64 {
    epoch as f64 * EPOCH
}

/// A duration in whole epochs, at least one.
fn epochs_of(seconds: f64) -> u64 {
    ((seconds / EPOCH).round() as i64).max(1) as u64
}

/// Locks a mutex, recovering the data from a poisoned lock (a panicking
/// sibling shard already aborts the run via its join handle).
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Which side (0 = endpoint `a`, 1 = endpoint `b`) *sends* when a channel
/// is crossed in `dir` (same convention as the ledger).
#[inline]
fn sender_side(dir: Direction) -> usize {
    match dir {
        Direction::AtoB => 0,
        Direction::BtoA => 1,
    }
}

/// Total order on trace events: `(epoch, kind rank, id, sub-id)`. Keys are
/// unique by construction, so the merged sort is a pure function of the
/// run's content — never of shard interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    epoch: u64,
    rank: u8,
    a: u64,
    b: u64,
}

// Trace ranks within an epoch (also the semantic phase order).
const RANK_FAULT: u8 = 0;
const RANK_SETTLED: u8 = 1;
const RANK_COMPLETED: u8 = 2;
const RANK_DROPPED: u8 = 3;
const RANK_GRIEFED: u8 = 4;
const RANK_REFUNDED: u8 = 5;
const RANK_BLACKLISTED: u8 = 6;
const RANK_RETRY: u8 = 7;
const RANK_ARRIVED: u8 = 8;
const RANK_SPLIT: u8 = 9;
const RANK_ABANDONED: u8 = 10;
const RANK_SENT: u8 = 11;
const RANK_SAMPLE: u8 = 12;
const RANK_QUEUED: u8 = 13;
const RANK_REBALANCE: u8 = 14;

/// The fate a unit was dealt at send time — a pure hash of
/// `(fault seed, payment, unit)`, so any shard computes the same fate and
/// no shared RNG stream is consumed (draw *order* would depend on the
/// partition; a hash cannot).
#[derive(Clone, Copy, Debug)]
enum Fate {
    Deliver { jitter_epochs: u64 },
    Drop { hop_index: u32 },
    Grief { hold_epochs: u64 },
}

/// Immutable per-unit routing state shared by every message about the unit.
#[derive(Debug)]
struct UnitInfo {
    payment: u64,
    seq: u32,
    amount: Amount,
    path: Arc<Path>,
    fate: Fate,
    /// Per-hop locked amounts when a fee schedule is active: the delivered
    /// amount plus all downstream fees. `None` means every hop locks
    /// exactly `amount`. A pure function of `(fee schedule, path, amount)`,
    /// so it is recomputed on message decode rather than serialized.
    hop_amounts: Option<Vec<Amount>>,
    /// The owning payment's deadline epoch, carried with the unit so the
    /// channel owner can expire queued units without payment state.
    deadline_epoch: u64,
}

impl UnitInfo {
    /// The amount locked on `hop`: the delivered amount plus downstream
    /// fees when a fee schedule is active.
    fn hop_amount(&self, hop: u32) -> Amount {
        match &self.hop_amounts {
            Some(amounts) => amounts[hop as usize],
            None => self.amount,
        }
    }
}

/// Why a unit failed, as reported to the payment owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FailCause {
    /// A hop lock found insufficient spendable balance (snapshot raced
    /// in-epoch traffic). Not a fault: no blacklist, no retry budget.
    Liquidity,
    /// A hop lock hit a downed channel.
    Outage,
    /// Dropped mid-path by the per-unit loss process.
    Dropped,
    /// HTLC griefed at the final hop: funds pinned, then refunded.
    Griefed,
}

#[derive(Debug)]
enum MsgBody {
    /// Settle hop `hop` of the unit's path (to the hop channel's owner).
    SettleHop { hop: u32 },
    /// Refund hop `hop` of the unit's path (to the hop channel's owner).
    RefundHop { hop: u32 },
    /// Try to lock hop `hop` (to the hop channel's owner).
    LockHop { hop: u32 },
    /// The unit settled end-to-end (to the payment owner).
    UnitDelivered,
    /// The unit failed and its locked prefix was refunded (to the payment
    /// owner).
    UnitFailed { blamed: ChannelId, cause: FailCause },
}

impl MsgBody {
    fn rank(&self) -> u8 {
        match self {
            MsgBody::SettleHop { .. } => 0,
            MsgBody::RefundHop { .. } => 1,
            MsgBody::LockHop { .. } => 2,
            MsgBody::UnitDelivered => 3,
            MsgBody::UnitFailed { .. } => 4,
        }
    }

    fn hop(&self) -> u32 {
        match self {
            MsgBody::SettleHop { hop } | MsgBody::RefundHop { hop } | MsgBody::LockHop { hop } => {
                *hop
            }
            _ => 0,
        }
    }
}

/// One cross-shard (or self-addressed) message, due at `fire_epoch`.
#[derive(Debug)]
struct Msg {
    fire_epoch: u64,
    body: MsgBody,
    unit: Arc<UnitInfo>,
}

impl Msg {
    /// Deterministic within-epoch processing key.
    fn key(&self) -> (u8, u64, u32, u32) {
        (
            self.body.rank(),
            self.unit.payment,
            self.unit.seq,
            self.body.hop(),
        )
    }
}

/// A payment owned by this shard.
struct LocalPayment {
    id: u64,
    src: NodeId,
    dst: NodeId,
    amount: Amount,
    arrival_epoch: u64,
    deadline_epoch: u64,
    delivered: Amount,
    inflight: Amount,
    status: PaymentStatus,
    /// Completion delay in seconds, once completed.
    delay: Option<f64>,
    next_seq: u32,
    /// Per-payment blamed-channel blacklist: `(channel, blocked-until
    /// epoch)`. Payment-local so routing never depends on which other
    /// payments share the shard.
    blacklist: Vec<(ChannelId, u64)>,
    fail_count: u32,
    not_before_epoch: u64,
    /// AIMD congestion window (units); only consulted when congestion
    /// control is configured.
    window: f64,
    /// Units sent but not yet reported delivered or failed, gated against
    /// `window` at pump time.
    outstanding: u32,
}

/// A unit parked at an owned `(channel, direction)` router queue, waiting
/// for liquidity under [`ShardPolicy::Queued`].
#[derive(Debug)]
struct QueuedUnit {
    unit: Arc<UnitInfo>,
    hop: u32,
    enqueued_epoch: u64,
}

/// The policy-defined service key of a queued unit. Unique per entry
/// (`(payment, seq)` breaks every tie), so queue order is a pure function
/// of queue content.
fn queue_key(policy: QueuePolicy, e: &QueuedUnit) -> (i64, u64, u32) {
    let primary = match policy {
        QueuePolicy::Fifo => e.enqueued_epoch as i64,
        QueuePolicy::SmallestFirst => e.unit.amount.micros(),
        QueuePolicy::EarliestDeadline => e.unit.deadline_epoch as i64,
    };
    (primary, e.unit.payment, e.unit.seq)
}

/// Fault statistics counted at unambiguous owners so a field-wise sum over
/// shards is partition-independent.
#[derive(Clone, Copy, Debug, Default)]
struct ShardStats {
    outages: u64,
    recoveries: u64,
    node_crashes: u64,
    units_refunded_by_outage: u64,
    units_dropped: u64,
    units_jittered: u64,
    units_griefed: u64,
    retries: u64,
    blacklistings: u64,
    payments_failed: u64,
}

/// Deterministic per-shard work counters, accumulated as the shard runs.
/// Every field is a pure function of the simulation inputs and the
/// partition, so identically-configured runs always produce identical
/// counters (unlike the barrier-wait timings, which live in the profiler).
#[derive(Clone, Copy, Debug, Default)]
struct ShardCounters {
    /// Cross-shard (and self-addressed) messages processed.
    events_processed: u64,
    /// `SettleHop` messages handled.
    settle_msgs: u64,
    /// `RefundHop` messages handled.
    refund_msgs: u64,
    /// `LockHop` messages handled.
    lock_msgs: u64,
    /// Payment-owner control messages (`UnitDelivered` / `UnitFailed`).
    control_msgs: u64,
    /// Dirty-balance triples published at exchange barriers (post-dedup).
    dirty_published: u64,
}

/// Per-shard epoch metrics surfaced by [`run_sharded`] through
/// [`ShardObservability`]. All counter fields are deterministic;
/// `barrier_wait_ms` is wall-clock and present only when the run used a
/// profiled telemetry handle.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardEpochMetrics {
    /// Shard rank.
    pub shard: u32,
    /// Epochs executed (same for every shard — the BSP loop is lockstep).
    pub epochs: u64,
    /// Payments owned by this shard (`payment_id % num_shards`).
    pub owned_payments: u64,
    /// Ledger channel slots owned by this shard.
    pub owned_channels: u64,
    /// Cross-shard messages processed (all kinds).
    pub events_processed: u64,
    /// Hop-settle messages handled.
    pub settle_msgs: u64,
    /// Hop-refund messages handled.
    pub refund_msgs: u64,
    /// Hop-lock messages handled.
    pub lock_msgs: u64,
    /// Payment-owner notifications handled (delivered / failed).
    pub control_msgs: u64,
    /// Dirty-balance publications at exchange barriers.
    pub dirty_published: u64,
    /// Transaction units dispatched by payments this shard owns.
    pub units_sent: u64,
    /// Wall-clock barrier-wait distribution (milliseconds per wait), from
    /// the span profiler. `None` unless the run profiled.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub barrier_wait_ms: Option<HistogramSnapshot>,
}

/// Cross-shard observability for one sharded run: per-shard work counters
/// plus load-imbalance summaries. Attached to [`SimReport`] **in memory
/// only** (the field is `#[serde(skip)]`): per-shard detail necessarily
/// varies with the shard count while report JSON must not.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardObservability {
    /// Shards the run was partitioned into.
    pub num_shards: u32,
    /// Per-shard metrics, indexed by rank.
    pub shards: Vec<ShardEpochMetrics>,
    /// `max / mean` of per-shard messages processed (1.0 = perfectly
    /// balanced; 0.0 when no shard processed any messages).
    pub event_imbalance: f64,
    /// `max / mean` of per-shard owned payments.
    pub payment_imbalance: f64,
}

impl ShardObservability {
    /// Multi-line human-readable rendering for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "shards={} event_imbalance={:.3} payment_imbalance={:.3}\n",
            self.num_shards, self.event_imbalance, self.payment_imbalance
        );
        out.push_str(
            "  shard payments channels   events   settle   refund     lock  control  published    units\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "  {:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
                s.shard,
                s.owned_payments,
                s.owned_channels,
                s.events_processed,
                s.settle_msgs,
                s.refund_msgs,
                s.lock_msgs,
                s.control_msgs,
                s.dirty_published,
                s.units_sent,
            ));
            if let Some(h) = &s.barrier_wait_ms {
                out.push_str(&format!(
                    "  barrier p50={:.3}ms p99={:.3}ms n={}",
                    h.p50, h.p99, h.count
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// `max / mean` of a sequence (0.0 when empty or all-zero).
fn imbalance_of(values: impl Iterator<Item = u64> + Clone) -> f64 {
    let max = values.clone().max().unwrap_or(0);
    let (sum, n) = values.fold((0u64, 0u64), |(s, n), v| (s + v, n + 1));
    if n == 0 || sum == 0 {
        0.0
    } else {
        max as f64 / (sum as f64 / n as f64)
    }
}

/// Per-tick series partial: exact integer sums merged across shards.
#[derive(Clone, Copy, Debug)]
struct SeriesPartial {
    epoch: u64,
    arrived: u64,
    completed: u64,
    attempted_micros: i64,
    delivered_micros: i64,
}

/// Per-sample-epoch telemetry partial: per-owned-channel figures plus the
/// shard's pending-payment count.
#[derive(Clone, Debug)]
struct SamplePartial {
    epoch: u64,
    pending: u32,
    /// `(channel, |a-b|/(a+b), |a-b|/capacity, inflight micros, queue depth)`.
    channels: Vec<(u32, f64, f64, i64, u32)>,
}

/// Everything a shard thread hands back for the deterministic merge.
struct ShardOutput {
    trace: Vec<(Key, TraceEvent)>,
    payments: Vec<LocalPayment>,
    ledger: Ledger,
    units_sent: u64,
    series: Vec<SeriesPartial>,
    samples: Vec<SamplePartial>,
    violations: Vec<AuditViolation>,
    stats: ShardStats,
    counters: ShardCounters,
    /// Exact fee micros accrued by this shard's payments.
    routing_fees_micros: i64,
    /// Rebalancing totals over this shard's owned channels.
    rebal_transactions: u64,
    rebal_moved_micros: i64,
    rebal_fees_micros: i64,
}

/// Balance view for routing: the barrier-frozen global snapshot with this
/// payment's in-pump debits applied, masked by downed and
/// payment-blacklisted channels.
struct SnapshotView<'a> {
    network: &'a Network,
    avail: &'a [[i64; 2]],
    faults: Option<&'a FaultState>,
    blacklist: &'a [(ChannelId, u64)],
    epoch: u64,
}

impl SnapshotView<'_> {
    #[inline]
    fn masked(&self, channel: ChannelId) -> bool {
        if let Some(f) = self.faults {
            if f.is_channel_down(channel) {
                return true;
            }
        }
        self.blacklist
            .iter()
            .any(|&(c, until)| c == channel && until > self.epoch)
    }
}

impl BalanceView for SnapshotView<'_> {
    fn available(&self, channel: ChannelId, from: NodeId) -> Amount {
        if self.masked(channel) {
            return Amount::ZERO;
        }
        let ch = self.network.channel(channel);
        let side = if from == ch.a { 0 } else { 1 };
        Amount::from_micros(self.avail[channel.index()][side])
    }

    fn available_dir(&self, channel: ChannelId, from: NodeId, dir: Direction) -> Amount {
        let _ = from;
        if self.masked(channel) {
            return Amount::ZERO;
        }
        Amount::from_micros(self.avail[channel.index()][sender_side(dir)])
    }
}

/// Draws the fate of one unit as a pure function of the fault seed and the
/// unit's identity, mirroring the sequential engine's per-unit
/// probabilities. Returns the fate plus whether a non-zero jitter was
/// drawn (for [`FaultStats::units_jittered`]).
fn unit_fate(fc: &FaultConfig, payment: u64, seq: u32, hops: usize) -> (Fate, bool) {
    let mut rng = SplitMix64::new(
        fc.seed
            ^ payment.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (u64::from(seq) << 20)
            ^ 0xd1b5_4a32_d192_ed03,
    );
    let _ = rng.next_u64(); // decorrelate the seed mix
    let roll = rng.next_f64();
    if roll < fc.unit_drop_prob {
        let hop_index = rng.next_below(hops.max(1)) as u32;
        return (Fate::Drop { hop_index }, false);
    }
    if roll < fc.unit_drop_prob + fc.grief_prob {
        let hold_epochs = ((fc.grief_hold.max(0.0) / EPOCH).round()) as u64;
        return (Fate::Grief { hold_epochs }, false);
    }
    if fc.settle_jitter > 0.0 {
        let j = fc.settle_jitter * rng.next_f64();
        let jitter_epochs = (j / EPOCH).floor() as u64;
        return (Fate::Deliver { jitter_epochs }, j > 0.0);
    }
    (Fate::Deliver { jitter_epochs: 0 }, false)
}

/// Quantized engine parameters shared by every shard.
#[derive(Clone, Copy, Debug)]
struct Clockwork {
    end_epoch: u64,
    delta_epochs: u64,
    poll_epochs: u64,
    deadline_epochs: u64,
    sample_epochs: u64,
}

/// The per-shard worker state for one run.
struct ShardCtx<'a> {
    shard: u16,
    network: &'a Network,
    partition: &'a Partition,
    cfg: &'a ShardedConfig,
    clock: Clockwork,
    scheme: Box<dyn RoutingScheme>,
    ledger: Ledger,
    audit: Option<LedgerAudit>,
    faults: Option<FaultState>,
    /// Scheduled fault transitions: `(epoch, plan index, event)`.
    plan_events: Vec<(u64, u64, FaultEvent)>,
    plan_cursor: usize,
    /// Frozen global balances in micro-tokens, per channel `[a, b]`.
    snapshot: Vec<[i64; 2]>,
    /// Channels this shard mutated since the last publish.
    dirty: Vec<u32>,
    /// Future messages, bucketed by fire epoch.
    pending_msgs: BTreeMap<u64, Vec<Msg>>,
    /// Outgoing messages staged this epoch, per destination shard.
    staged: Vec<Vec<Msg>>,
    /// Payments owned by this shard, in arrival order.
    payments: Vec<LocalPayment>,
    /// Indices of still-pending payments.
    pending: Vec<usize>,
    /// `(arrival epoch, payment index)` cursor into `payments`.
    arrivals: Vec<(u64, usize)>,
    arrival_cursor: usize,
    trace: Vec<(Key, TraceEvent)>,
    tel_on: bool,
    units_sent: u64,
    series: Vec<SeriesPartial>,
    samples: Vec<SamplePartial>,
    violations: Vec<AuditViolation>,
    stats: ShardStats,
    counters: ShardCounters,
    // Running integer totals for the series partials.
    arrived_count: u64,
    completed_count: u64,
    attempted_micros: i64,
    delivered_micros: i64,
    /// Router queues at owned channels, keyed `(channel, sender side)`,
    /// each kept in [`QueuePolicy`] order ([`ShardPolicy::Queued`] only).
    /// `BTreeMap` iteration gives the deterministic drain order.
    queues: BTreeMap<(u32, u8), Vec<QueuedUnit>>,
    /// Exact fee micros accrued by payments this shard owns.
    routing_fees_micros: i64,
    /// Owned channels with a scheduled, not-yet-applied correction.
    rebalance_pending: Vec<bool>,
    /// Scheduled corrections `(apply epoch, channel)`; appended in check
    /// order, which is naturally sorted by apply epoch.
    rebalance_applies: Vec<(u64, u32)>,
    // Rebalancing totals over owned channels, in exact micros.
    rebal_transactions: u64,
    rebal_moved_micros: i64,
    rebal_fees_micros: i64,
}

impl ShardCtx<'_> {
    fn emit(&mut self, key: Key, ev: TraceEvent) {
        if self.tel_on {
            self.trace.push((key, ev));
        }
    }

    /// Owner guard for every ledger mutation: refuses (and records) writes
    /// to channels this shard does not own. Active in release builds.
    fn own(&mut self, c: ChannelId, epoch: u64, event: &str) -> bool {
        let owner = self.partition.channel_owner(c) as u16;
        if owner == self.shard {
            return true;
        }
        if self.violations.len() < crate::engine::MAX_RELEASE_VIOLATIONS {
            self.violations.push(AuditViolation {
                time: t_of(epoch),
                event: event.to_string(),
                kind: AuditViolationKind::ForeignSlotMutation {
                    channel: c,
                    owner_shard: u32::from(owner),
                    mutating_shard: u32::from(self.shard),
                },
            });
        }
        false
    }

    fn stage(&mut self, to: usize, msg: Msg) {
        if msg.fire_epoch <= self.clock.end_epoch {
            self.staged[to].push(msg);
        }
    }

    fn stage_hop(&mut self, unit: &Arc<UnitInfo>, hop: u32, fire_epoch: u64, body: MsgBody) {
        let (c, _) = unit.path.hops()[hop as usize];
        let to = self.partition.channel_owner(c);
        self.stage(
            to,
            Msg {
                fire_epoch,
                body,
                unit: Arc::clone(unit),
            },
        );
    }

    fn stage_to_payment_owner(&mut self, unit: &Arc<UnitInfo>, fire_epoch: u64, body: MsgBody) {
        let to = (unit.payment % self.partition.num_shards() as u64) as usize;
        self.stage(
            to,
            Msg {
                fire_epoch,
                body,
                unit: Arc::clone(unit),
            },
        );
    }

    /// Applies the fault transitions scheduled for `epoch`. Every shard
    /// updates its own full-network mask; only the owning shard emits the
    /// trace event and counts the transition.
    fn apply_faults(&mut self, epoch: u64) {
        while self.plan_cursor < self.plan_events.len()
            && self.plan_events[self.plan_cursor].0 == epoch
        {
            let (_, plan_idx, ev) = self.plan_events[self.plan_cursor].clone();
            self.plan_cursor += 1;
            let t = t_of(epoch);
            match &ev {
                FaultEvent::ChannelDown(c) => {
                    if self.partition.channel_owner(*c) as u16 == self.shard {
                        self.stats.outages += 1;
                        let channel = c.index() as u32;
                        self.emit(
                            Key {
                                epoch,
                                rank: RANK_FAULT,
                                a: plan_idx,
                                b: 0,
                            },
                            TraceEvent::ChannelOutage { t, channel },
                        );
                    }
                }
                FaultEvent::ChannelUp(c) => {
                    if self.partition.channel_owner(*c) as u16 == self.shard {
                        self.stats.recoveries += 1;
                        let channel = c.index() as u32;
                        self.emit(
                            Key {
                                epoch,
                                rank: RANK_FAULT,
                                a: plan_idx,
                                b: 0,
                            },
                            TraceEvent::ChannelRecovered { t, channel },
                        );
                    }
                }
                FaultEvent::NodeDown(n) => {
                    if self.partition.node_shard(*n) as u16 == self.shard {
                        let was_down = self.faults.as_ref().is_some_and(|f| f.is_node_down(*n));
                        if !was_down {
                            self.stats.node_crashes += 1;
                        }
                        let node = n.index() as u32;
                        self.emit(
                            Key {
                                epoch,
                                rank: RANK_FAULT,
                                a: plan_idx,
                                b: 0,
                            },
                            TraceEvent::NodeCrashed { t, node },
                        );
                    }
                }
                FaultEvent::NodeUp(n) => {
                    if self.partition.node_shard(*n) as u16 == self.shard {
                        let node = n.index() as u32;
                        self.emit(
                            Key {
                                epoch,
                                rank: RANK_FAULT,
                                a: plan_idx,
                                b: 0,
                            },
                            TraceEvent::NodeRecovered { t, node },
                        );
                    }
                }
            }
            if let Some(f) = self.faults.as_mut() {
                let _ = f.apply(self.network, &ev);
            }
        }
    }

    /// Processes every message due this epoch in deterministic key order.
    fn process_messages(&mut self, epoch: u64) {
        let Some(mut due) = self.pending_msgs.remove(&epoch) else {
            return;
        };
        let lane = u32::from(self.shard);
        let _span = self
            .cfg
            .telemetry
            .span_enter_lane(Phase::MessageMerge, lane);
        self.cfg
            .telemetry
            .span_items_lane(Phase::MessageMerge, lane, due.len() as u64);
        self.cfg
            .telemetry
            .span_sim(Phase::MessageMerge, t_of(epoch));
        due.sort_unstable_by_key(Msg::key);
        for msg in due {
            self.counters.events_processed += 1;
            match &msg.body {
                MsgBody::SettleHop { .. } => self.counters.settle_msgs += 1,
                MsgBody::RefundHop { .. } => self.counters.refund_msgs += 1,
                MsgBody::LockHop { .. } => self.counters.lock_msgs += 1,
                MsgBody::UnitDelivered | MsgBody::UnitFailed { .. } => {
                    self.counters.control_msgs += 1
                }
            }
            match msg.body {
                MsgBody::SettleHop { hop } => self.on_settle_hop(&msg.unit, hop, epoch),
                MsgBody::RefundHop { hop } => self.on_refund_hop(&msg.unit, hop, epoch),
                MsgBody::LockHop { hop } => self.on_lock_hop(&msg.unit, hop, epoch),
                MsgBody::UnitDelivered => self.on_unit_delivered(&msg.unit, epoch),
                MsgBody::UnitFailed { blamed, cause } => {
                    self.on_unit_failed(&msg.unit, blamed, cause, epoch)
                }
            }
        }
    }

    fn on_settle_hop(&mut self, unit: &Arc<UnitInfo>, hop: u32, epoch: u64) {
        let (c, _) = unit.path.hops()[hop as usize];
        if !self.own(c, epoch, "settle-hop") {
            return;
        }
        let to = unit.path.nodes()[hop as usize + 1];
        if let Err(e) = self
            .ledger
            .settle_hop(self.network, c, to, unit.hop_amount(hop))
        {
            record_release(&mut self.violations, t_of(epoch), "settle-hop", &e);
            return;
        }
        self.dirty.push(c.index() as u32);
    }

    fn on_refund_hop(&mut self, unit: &Arc<UnitInfo>, hop: u32, epoch: u64) {
        let (c, _) = unit.path.hops()[hop as usize];
        if !self.own(c, epoch, "refund-hop") {
            return;
        }
        let from = unit.path.nodes()[hop as usize];
        if let Err(e) = self
            .ledger
            .refund_hop(self.network, c, from, unit.hop_amount(hop))
        {
            record_release(&mut self.violations, t_of(epoch), "refund-hop", &e);
            return;
        }
        self.dirty.push(c.index() as u32);
    }

    /// Fails a unit at `hop`: refunds the locked prefix (`0..hop`, plus
    /// `hop` itself when `locked_current`) next epoch and notifies the
    /// payment owner.
    fn fail_unit(
        &mut self,
        unit: &Arc<UnitInfo>,
        hop: u32,
        locked_current: bool,
        blamed: ChannelId,
        cause: FailCause,
        fire_epoch: u64,
    ) {
        let last_refund = if locked_current { hop + 1 } else { hop };
        for h in 0..last_refund {
            self.stage_hop(unit, h, fire_epoch, MsgBody::RefundHop { hop: h });
        }
        self.stage_to_payment_owner(unit, fire_epoch, MsgBody::UnitFailed { blamed, cause });
    }

    fn on_lock_hop(&mut self, unit: &Arc<UnitInfo>, hop: u32, epoch: u64) {
        let (c, dir) = unit.path.hops()[hop as usize];
        if !self.own(c, epoch, "lock-hop") {
            return;
        }
        let down = self.faults.as_ref().is_some_and(|f| f.is_channel_down(c));
        if down {
            self.fail_unit(unit, hop, false, c, FailCause::Outage, epoch + 1);
            return;
        }
        if self.cfg.policy == ShardPolicy::Queued {
            let key = (c.index() as u32, sender_side(dir) as u8);
            // No overtaking: a backlog on this direction queues the unit
            // even if the lock would succeed right now.
            let backlog = self.queues.get(&key).is_some_and(|q| !q.is_empty());
            if backlog || !self.lock_and_advance(unit, hop, epoch) {
                self.enqueue_unit(unit, hop, epoch, key);
            }
            return;
        }
        if !self.lock_and_advance(unit, hop, epoch) {
            self.fail_unit(unit, hop, false, c, FailCause::Liquidity, epoch + 1);
        }
    }

    /// Attempts the ledger lock for `hop`; on success advances the unit
    /// (forward, settle, or fault staging) and returns `true`. A `false`
    /// return leaves no ledger effect.
    fn lock_and_advance(&mut self, unit: &Arc<UnitInfo>, hop: u32, epoch: u64) -> bool {
        let (c, _) = unit.path.hops()[hop as usize];
        if !self.own(c, epoch, "lock-advance") {
            // Unreachable for owned queues/messages; recorded and swallowed.
            return true;
        }
        let from = unit.path.nodes()[hop as usize];
        if self
            .ledger
            .lock_hop(self.network, c, from, unit.hop_amount(hop))
            .is_err()
        {
            return false;
        }
        self.dirty.push(c.index() as u32);
        let hops = unit.path.hops().len() as u32;
        // A mid-path drop fails the unit right after the blamed hop locks.
        if let Fate::Drop { hop_index } = unit.fate {
            if hop_index == hop {
                self.fail_unit(unit, hop, true, c, FailCause::Dropped, epoch + 1);
                return true;
            }
        }
        if hop + 1 < hops {
            self.stage_hop(unit, hop + 1, epoch + 1, MsgBody::LockHop { hop: hop + 1 });
            return true;
        }
        // Final hop locked: the unit reached the receiver.
        match unit.fate {
            Fate::Deliver { jitter_epochs } => {
                let se = epoch + self.clock.delta_epochs + jitter_epochs;
                for h in 0..hops {
                    self.stage_hop(unit, h, se, MsgBody::SettleHop { hop: h });
                }
                self.stage_to_payment_owner(unit, se, MsgBody::UnitDelivered);
            }
            Fate::Grief { hold_epochs } => {
                let rf = epoch + self.clock.delta_epochs + hold_epochs;
                for h in 0..hops {
                    self.stage_hop(unit, h, rf, MsgBody::RefundHop { hop: h });
                }
                self.stage_to_payment_owner(
                    unit,
                    rf,
                    MsgBody::UnitFailed {
                        blamed: c,
                        cause: FailCause::Griefed,
                    },
                );
            }
            Fate::Drop { .. } => {
                // Drop at an out-of-range hop index cannot happen: the
                // index is drawn modulo the hop count.
            }
        }
        true
    }

    /// Parks a unit in the owned `(channel, sender side)` router queue in
    /// [`QueuePolicy`] order, or fails it as a liquidity refusal when the
    /// queue is full.
    fn enqueue_unit(&mut self, unit: &Arc<UnitInfo>, hop: u32, epoch: u64, key: (u32, u8)) {
        let len = self.queues.get(&key).map_or(0, Vec::len);
        if len >= self.cfg.max_queue_len {
            let (c, _) = unit.path.hops()[hop as usize];
            self.fail_unit(unit, hop, false, c, FailCause::Liquidity, epoch + 1);
            return;
        }
        let entry = QueuedUnit {
            unit: Arc::clone(unit),
            hop,
            enqueued_epoch: epoch,
        };
        let policy = self.cfg.queue_policy;
        let k = queue_key(policy, &entry);
        let q = self.queues.entry(key).or_default();
        let pos = q.partition_point(|e| queue_key(policy, e) <= k);
        q.insert(pos, entry);
        let depth = q.len() as u32;
        self.emit(
            Key {
                epoch,
                rank: RANK_QUEUED,
                a: unit.payment,
                b: u64::from(unit.seq),
            },
            TraceEvent::UnitQueued {
                t: t_of(epoch),
                payment: unit.payment,
                channel: key.0,
                depth,
            },
        );
    }

    /// One epoch of router-queue service at this shard's owned channels:
    /// expire units whose payment deadline passed, then drain head-of-line
    /// while liquidity lasts. Queues are visited in `(channel, direction)`
    /// order; downed channels keep their queues intact (queued units ride
    /// out outages until their deadline).
    fn drain_queues(&mut self, epoch: u64) {
        if self.cfg.policy != ShardPolicy::Queued || self.queues.is_empty() {
            return;
        }
        let keys: Vec<(u32, u8)> = self.queues.keys().copied().collect();
        for key in keys {
            let Some(mut q) = self.queues.remove(&key) else {
                continue;
            };
            let down = self
                .faults
                .as_ref()
                .is_some_and(|f| f.is_channel_down(ChannelId(key.0)));
            let mut kept: Vec<QueuedUnit> = Vec::with_capacity(q.len());
            for e in q.drain(..) {
                if e.unit.deadline_epoch <= epoch {
                    let (c, _) = e.unit.path.hops()[e.hop as usize];
                    self.fail_unit(&e.unit, e.hop, false, c, FailCause::Liquidity, epoch + 1);
                    continue;
                }
                // Head-of-line: after the first unit that cannot lock (or
                // during an outage) the rest of the queue just waits.
                if down || !kept.is_empty() || !self.lock_and_advance(&e.unit, e.hop, epoch) {
                    kept.push(e);
                }
            }
            if !kept.is_empty() {
                self.queues.insert(key, kept);
            }
        }
    }

    /// One epoch of on-chain rebalancing over this shard's owned channels:
    /// apply the corrections whose confirmation delay elapsed, then (on the
    /// check cadence) schedule new ones. Mirrors the sequential engine's
    /// check/apply split; the new balances travel through the ordinary
    /// dirty-balance exchange, so remote routing sees them next epoch.
    fn rebalance_step(&mut self, epoch: u64) {
        let Some(policy) = self.cfg.rebalance.clone() else {
            return;
        };
        let check_epochs = epochs_of(policy.check_interval);
        let confirm_epochs = epochs_of(policy.confirmation_delay);
        // Due corrections were scheduled in apply-epoch order; channels
        // within one epoch were appended in id order.
        let mut due = Vec::new();
        self.rebalance_applies.retain(|&(fire, c)| {
            if fire == epoch {
                due.push(c);
                false
            } else {
                true
            }
        });
        for cidx in due {
            let channel = ChannelId(cidx);
            self.rebalance_pending[channel.index()] = false;
            // Re-evaluate at confirmation: interim traffic may have healed
            // (or deepened) the skew measured at check time.
            let (a, b) = self.ledger.balances(channel);
            let Some(amount) = policy.correction(a, b) else {
                continue;
            };
            if !self.own(channel, epoch, "rebalance-apply") {
                continue;
            }
            let ch = self.network.channel(channel);
            let (rich, poor) = if a >= b { (ch.a, ch.b) } else { (ch.b, ch.a) };
            let taken = self.ledger.withdraw(self.network, channel, rich, amount);
            let redeposit = taken.saturating_sub(policy.fee).max(Amount::ZERO);
            if let Err(e) = self.ledger.deposit(self.network, channel, poor, redeposit) {
                record_release(&mut self.violations, t_of(epoch), "rebalance-deposit", &e);
                continue;
            }
            let fee_paid = taken.saturating_sub(redeposit);
            self.rebal_transactions += 1;
            self.rebal_moved_micros = self.rebal_moved_micros.saturating_add(taken.micros());
            self.rebal_fees_micros = self.rebal_fees_micros.saturating_add(fee_paid.micros());
            self.dirty.push(cidx);
            self.emit(
                Key {
                    epoch,
                    rank: RANK_REBALANCE,
                    a: u64::from(cidx),
                    b: 0,
                },
                TraceEvent::RebalanceApplied {
                    t: t_of(epoch),
                    channel: cidx,
                    moved: tokens(taken),
                    fee: tokens(fee_paid),
                },
            );
            if let Some(audit) = self.audit.as_mut() {
                audit.on_withdraw(taken);
                audit.on_deposit(redeposit);
                audit.check(&self.ledger, t_of(epoch), "rebalance");
            }
        }
        if epoch.is_multiple_of(check_epochs) {
            for ch in self.network.channels() {
                if self.partition.channel_owner(ch.id) as u16 != self.shard {
                    continue;
                }
                if self.rebalance_pending[ch.id.index()] {
                    continue;
                }
                let (a, b) = self.ledger.balances(ch.id);
                if policy.correction(a, b).is_some() {
                    self.rebalance_pending[ch.id.index()] = true;
                    self.rebalance_applies
                        .push((epoch + confirm_epochs, ch.id.index() as u32));
                }
            }
        }
    }

    /// AIMD window update at the payment owner when a unit's outcome
    /// arrives: the unit is no longer outstanding, and the window grows
    /// (delivered) or shrinks multiplicatively (failed).
    fn congestion_on_outcome(&mut self, pidx: usize, delivered: bool) {
        let Some(cc) = self.cfg.congestion.as_ref() else {
            return;
        };
        let p = &mut self.payments[pidx];
        p.outstanding = p.outstanding.saturating_sub(1);
        if delivered {
            p.window = (p.window + cc.additive_increase / p.window).min(cc.max_window);
        } else {
            p.window = (p.window * cc.multiplicative_decrease).max(cc.min_window);
        }
    }

    fn on_unit_delivered(&mut self, unit: &Arc<UnitInfo>, epoch: u64) {
        let pidx = self.payment_index(unit.payment);
        self.congestion_on_outcome(pidx, true);
        // The sender locked `hop_amounts[0]` and the receiver was paid
        // `amount`; the difference is the routing fee, accrued exactly.
        if let Some(first) = unit.hop_amounts.as_ref().and_then(|a| a.first()) {
            let fee = first.micros().saturating_sub(unit.amount.micros());
            self.routing_fees_micros = self.routing_fees_micros.saturating_add(fee);
        }
        let t = t_of(epoch);
        let p = &mut self.payments[pidx];
        p.inflight -= unit.amount;
        p.delivered += unit.amount;
        self.delivered_micros += unit.amount.micros();
        let pid = p.id;
        let amount_tokens = tokens(unit.amount);
        let completed_now = p.status == PaymentStatus::Pending && p.delivered >= p.amount;
        let delay = (epoch - p.arrival_epoch) as f64 * EPOCH;
        if completed_now {
            p.status = PaymentStatus::Completed;
            p.delay = Some(delay);
            self.completed_count += 1;
        }
        self.emit(
            Key {
                epoch,
                rank: RANK_SETTLED,
                a: pid,
                b: u64::from(unit.seq),
            },
            TraceEvent::UnitSettled {
                t,
                payment: pid,
                amount: amount_tokens,
            },
        );
        if completed_now {
            self.emit(
                Key {
                    epoch,
                    rank: RANK_COMPLETED,
                    a: pid,
                    b: 0,
                },
                TraceEvent::PaymentCompleted {
                    t,
                    payment: pid,
                    delay,
                },
            );
        }
    }

    fn on_unit_failed(
        &mut self,
        unit: &Arc<UnitInfo>,
        blamed: ChannelId,
        cause: FailCause,
        epoch: u64,
    ) {
        let pidx = self.payment_index(unit.payment);
        self.congestion_on_outcome(pidx, false);
        let t = t_of(epoch);
        let amount_tokens = tokens(unit.amount);
        let pid;
        {
            let p = &mut self.payments[pidx];
            p.inflight -= unit.amount;
            pid = p.id;
        }
        let seq = u64::from(unit.seq);
        match cause {
            FailCause::Dropped => {
                self.emit(
                    Key {
                        epoch,
                        rank: RANK_DROPPED,
                        a: pid,
                        b: seq,
                    },
                    TraceEvent::UnitDropped {
                        t,
                        payment: pid,
                        amount: amount_tokens,
                        channel: blamed.index() as u32,
                    },
                );
            }
            FailCause::Griefed => {
                let hold = self
                    .cfg
                    .faults
                    .as_ref()
                    .map_or(0.0, |plan| plan.config.grief_hold);
                self.emit(
                    Key {
                        epoch,
                        rank: RANK_GRIEFED,
                        a: pid,
                        b: seq,
                    },
                    TraceEvent::UnitGriefed {
                        t,
                        payment: pid,
                        amount: amount_tokens,
                        hold,
                    },
                );
            }
            FailCause::Outage => self.stats.units_refunded_by_outage += 1,
            FailCause::Liquidity => {}
        }
        self.emit(
            Key {
                epoch,
                rank: RANK_REFUNDED,
                a: pid,
                b: seq,
            },
            TraceEvent::UnitRefunded {
                t,
                payment: pid,
                amount: amount_tokens,
            },
        );
        if cause != FailCause::Liquidity {
            self.handle_fault_failure(pidx, unit.seq, blamed, epoch);
        }
    }

    /// Sender-side recovery after a fault-caused unit failure: abandon
    /// without a retry policy, otherwise blacklist + exponential backoff
    /// within the per-payment attempt budget.
    fn handle_fault_failure(&mut self, pidx: usize, seq: u32, blamed: ChannelId, epoch: u64) {
        if self.payments[pidx].status != PaymentStatus::Pending {
            return;
        }
        let t = t_of(epoch);
        let retry = self
            .cfg
            .faults
            .as_ref()
            .and_then(|plan| plan.config.retry.clone());
        let pid = self.payments[pidx].id;
        let Some(policy) = retry else {
            self.abandon(pidx, epoch, true);
            return;
        };
        let until_epoch = epoch + epochs_of(policy.blacklist_duration);
        let p = &mut self.payments[pidx];
        p.blacklist.retain(|&(_, until)| until > epoch);
        p.blacklist.push((blamed, until_epoch));
        p.fail_count += 1;
        let fails = p.fail_count;
        self.stats.blacklistings += 1;
        self.emit(
            Key {
                epoch,
                rank: RANK_BLACKLISTED,
                a: pid,
                b: u64::from(seq),
            },
            TraceEvent::ChannelBlacklisted {
                t,
                channel: blamed.index() as u32,
                until: t_of(until_epoch),
            },
        );
        if fails > policy.max_attempts {
            self.abandon(pidx, epoch, true);
            return;
        }
        let backoff = policy.backoff_base * policy.backoff_mult.powi(fails as i32 - 1);
        let backoff_epochs = epochs_of(backoff);
        let p = &mut self.payments[pidx];
        p.not_before_epoch = p.not_before_epoch.max(epoch + backoff_epochs);
        self.stats.retries += 1;
        self.emit(
            Key {
                epoch,
                rank: RANK_RETRY,
                a: pid,
                b: u64::from(seq),
            },
            TraceEvent::PaymentRetry {
                t,
                payment: pid,
                attempt: fails,
                backoff: backoff_epochs as f64 * EPOCH,
            },
        );
    }

    fn abandon(&mut self, pidx: usize, epoch: u64, fault_caused: bool) {
        let p = &mut self.payments[pidx];
        if p.status != PaymentStatus::Pending {
            return;
        }
        p.status = PaymentStatus::Abandoned;
        if fault_caused {
            self.stats.payments_failed += 1;
        }
        let pid = self.payments[pidx].id;
        let delivered = tokens(self.payments[pidx].delivered);
        self.emit(
            Key {
                epoch,
                rank: RANK_ABANDONED,
                a: pid,
                b: 0,
            },
            TraceEvent::PaymentAbandoned {
                t: t_of(epoch),
                payment: pid,
                delivered,
            },
        );
    }

    /// Index of the payment with global id `pid` in this shard's slab.
    /// Ids are assigned to shards round-robin, so the local index is the
    /// arrival rank — recovered by binary search over the (sorted) ids.
    fn payment_index(&self, pid: u64) -> usize {
        match self.payments.binary_search_by_key(&pid, |p| p.id) {
            Ok(i) => i,
            // spider-lint: allow(panic-reachability) — shards only message ids they were dealt; a miss is a routing-table corruption we must not mask
            Err(_) => unreachable!("message for unknown payment {pid}"),
        }
    }

    /// Sends as many MTU units of payment `pidx` as the frozen snapshot
    /// allows. Each routed unit debits a private copy of the snapshot
    /// (restored afterwards), so concurrent payments this epoch route
    /// independently of each other — over-subscription is resolved by the
    /// deterministic lock order at channel owners next epoch.
    fn pump(&mut self, pidx: usize, epoch: u64) {
        if self.payments[pidx].status != PaymentStatus::Pending
            || epoch < self.payments[pidx].not_before_epoch
        {
            return;
        }
        let mut undo: Vec<(usize, usize, i64)> = Vec::new();
        loop {
            let p = &self.payments[pidx];
            let remaining = p.amount - p.delivered - p.inflight;
            if !remaining.is_positive() {
                break;
            }
            // Congestion window gate: at most floor(window) units may be
            // outstanding per payment.
            if self.cfg.congestion.is_some() && f64::from(p.outstanding) >= p.window.floor() {
                break;
            }
            let unit_amount = remaining.min(self.cfg.mtu);
            let (src, dst, pid) = (p.src, p.dst, p.id);
            let decision = {
                let view = SnapshotView {
                    network: self.network,
                    avail: &self.snapshot,
                    faults: self.faults.as_ref(),
                    blacklist: &self.payments[pidx].blacklist,
                    epoch,
                };
                self.scheme
                    .route_unit(self.network, &view, src, dst, unit_amount)
            };
            match decision {
                UnitDecision::Route(path) => {
                    // Hop amounts carry downstream fees; a pure function of
                    // (schedule, path, amount), recomputed on msg decode.
                    let hop_amounts = match self.cfg.fees.as_ref() {
                        Some(f) if !f.is_free() => Some(f.path_amounts(&path, unit_amount)),
                        _ => None,
                    };
                    for (i, &(c, dir)) in path.hops().iter().enumerate() {
                        let side = sender_side(dir);
                        let micros = hop_amounts.as_ref().map_or(unit_amount, |a| a[i]).micros();
                        self.snapshot[c.index()][side] -= micros;
                        undo.push((c.index(), side, micros));
                    }
                    let seq = self.payments[pidx].next_seq;
                    self.payments[pidx].next_seq += 1;
                    self.payments[pidx].inflight += unit_amount;
                    if self.cfg.congestion.is_some() {
                        self.payments[pidx].outstanding += 1;
                    }
                    self.units_sent += 1;
                    let (fate, jittered) = match self.cfg.faults.as_ref() {
                        Some(plan) => {
                            let (fate, jittered) =
                                unit_fate(&plan.config, pid, seq, path.hops().len());
                            match fate {
                                Fate::Drop { .. } => self.stats.units_dropped += 1,
                                Fate::Grief { .. } => self.stats.units_griefed += 1,
                                Fate::Deliver { .. } => {}
                            }
                            (fate, jittered)
                        }
                        None => (Fate::Deliver { jitter_epochs: 0 }, false),
                    };
                    if jittered {
                        self.stats.units_jittered += 1;
                    }
                    self.emit(
                        Key {
                            epoch,
                            rank: RANK_SENT,
                            a: pid,
                            b: u64::from(seq),
                        },
                        TraceEvent::UnitSent {
                            t: t_of(epoch),
                            payment: pid,
                            amount: tokens(unit_amount),
                            hops: path.len() as u32,
                        },
                    );
                    let unit = Arc::new(UnitInfo {
                        payment: pid,
                        seq,
                        amount: unit_amount,
                        path,
                        fate,
                        hop_amounts,
                        deadline_epoch: self.payments[pidx].deadline_epoch,
                    });
                    self.stage_hop(&unit, 0, epoch + 1, MsgBody::LockHop { hop: 0 });
                }
                UnitDecision::Unavailable => {
                    // No spendable route right now: back the window off so
                    // the payment probes gently once liquidity returns.
                    if let Some(cc) = self.cfg.congestion.as_ref() {
                        let p = &mut self.payments[pidx];
                        p.window = (p.window * cc.multiplicative_decrease).max(cc.min_window);
                    }
                    break;
                }
                UnitDecision::Never => {
                    // Under faults, "no path" may only mean "all masked":
                    // stay pending and retry once channels recover.
                    if self.faults.is_none() {
                        self.abandon(pidx, epoch, false);
                    }
                    break;
                }
            }
        }
        for (c, side, micros) in undo {
            self.snapshot[c][side] += micros;
        }
    }

    /// Processes the payments arriving this epoch.
    fn process_arrivals(&mut self, epoch: u64) {
        while self.arrival_cursor < self.arrivals.len()
            && self.arrivals[self.arrival_cursor].0 == epoch
        {
            let pidx = self.arrivals[self.arrival_cursor].1;
            self.arrival_cursor += 1;
            self.arrived_count += 1;
            self.attempted_micros += self.payments[pidx].amount.micros();
            let p = &self.payments[pidx];
            let (pid, src, dst, amount) = (p.id, p.src, p.dst, p.amount);
            self.emit(
                Key {
                    epoch,
                    rank: RANK_ARRIVED,
                    a: pid,
                    b: 0,
                },
                TraceEvent::PaymentArrived {
                    t: t_of(epoch),
                    payment: pid,
                    src: src.0,
                    dst: dst.0,
                    amount: tokens(amount),
                },
            );
            let mtu = self.cfg.mtu.micros();
            self.emit(
                Key {
                    epoch,
                    rank: RANK_SPLIT,
                    a: pid,
                    b: 0,
                },
                TraceEvent::PaymentSplit {
                    t: t_of(epoch),
                    payment: pid,
                    units: ((amount.micros() + mtu - 1) / mtu).max(0) as u64,
                },
            );
            self.pending.push(pidx);
            self.pump(pidx, epoch);
        }
    }

    /// The scheduler tick: expire deadlines, pump every pending payment,
    /// record the series partial.
    fn tick(&mut self, epoch: u64) {
        self.pending
            .retain(|&i| self.payments[i].status == PaymentStatus::Pending);
        let due: Vec<usize> = self
            .pending
            .iter()
            .copied()
            .filter(|&i| self.payments[i].deadline_epoch <= epoch)
            .collect();
        for i in due {
            self.abandon(i, epoch, false);
        }
        self.pending
            .retain(|&i| self.payments[i].status == PaymentStatus::Pending);
        let mut order = self.pending.clone();
        if self.cfg.policy == ShardPolicy::Queued {
            // Pump in source-policy order. Outcomes cannot depend on this
            // order (each pump's snapshot debits are undone afterwards),
            // but the paper's SRPT source scheduling is the queued-router
            // default, and the order shapes seq assignment within a tick.
            let payments = &self.payments;
            self.cfg.source_policy.order_quantized(
                &mut order,
                |i| (payments[i].amount - payments[i].delivered).micros(),
                |i| payments[i].arrival_epoch,
                |i| payments[i].deadline_epoch,
                |i| payments[i].id,
            );
        }
        for i in order {
            self.pump(i, epoch);
        }
        self.pending
            .retain(|&i| self.payments[i].status == PaymentStatus::Pending);
        if self.cfg.record_series {
            self.series.push(SeriesPartial {
                epoch,
                arrived: self.arrived_count,
                completed: self.completed_count,
                attempted_micros: self.attempted_micros,
                delivered_micros: self.delivered_micros,
            });
        }
    }

    /// Emits `ChannelSample`s for owned channels and stores the partial
    /// used to rebuild the merged `NetworkSample` series.
    fn sample(&mut self, epoch: u64) {
        if !self.tel_on {
            return;
        }
        let t = t_of(epoch);
        let mut channels = Vec::new();
        for ch in self.network.channels() {
            if self.partition.channel_owner(ch.id) as u16 != self.shard {
                continue;
            }
            let (a, b) = self.ledger.balances(ch.id);
            let total = tokens(a + b);
            let imbalance = if total > 0.0 {
                (tokens(a) - tokens(b)).abs() / total
            } else {
                0.0
            };
            let mean_ratio = (a - b).abs().ratio_of(self.ledger.capacity(ch.id));
            let inflight = self.ledger.inflight(ch.id);
            let cid = ch.id.index() as u32;
            // Both directions' router queues live at this owner shard.
            let queue_depth: u32 = self
                .queues
                .range((cid, 0)..=(cid, 1))
                .map(|(_, q)| q.len() as u32)
                .sum();
            channels.push((cid, imbalance, mean_ratio, inflight.micros(), queue_depth));
            self.emit(
                Key {
                    epoch,
                    rank: RANK_SAMPLE,
                    a: ch.id.index() as u64,
                    b: 0,
                },
                TraceEvent::ChannelSample {
                    t,
                    channel: cid,
                    imbalance,
                    inflight: tokens(inflight),
                    queue_depth,
                },
            );
        }
        let pending = self
            .payments
            .iter()
            .filter(|p| p.status == PaymentStatus::Pending)
            .count() as u32;
        self.samples.push(SamplePartial {
            epoch,
            pending,
            channels,
        });
    }
}

/// Runs one sharded simulation of `transactions` over `network`, split
/// according to `partition`. See the module docs for the execution model.
///
/// The result is byte-identical for any shard count: `partition` only
/// decides *where* work happens, never *what* happens.
pub fn run_sharded(
    network: &Network,
    transactions: &[Transaction],
    partition: &Partition,
    config: &ShardedConfig,
) -> SimReport {
    match run_sharded_inner(network, transactions, partition, config, None, None) {
        Ok(report) => report,
        // No checkpoint spec and no resume state: no snapshot I/O happens.
        // spider-lint: allow(panic-reachability) — infallible wrapper; the Err arm is statically dead
        Err(e) => unreachable!("plain run cannot fail with a snapshot error: {e}"),
    }
}

/// Runs the sharded engine while writing a snapshot every `ckpt.every`
/// epochs. Snapshots are taken at the BSP epoch barrier (after the exchange
/// phase), where every shard's state is quiescent; shard 0 assembles the
/// per-shard captures into one [`crate::snapshot`] container.
pub fn run_sharded_checkpointed(
    network: &Network,
    transactions: &[Transaction],
    partition: &Partition,
    config: &ShardedConfig,
    ckpt: &CheckpointSpec,
) -> Result<SimReport, SnapshotError> {
    run_sharded_inner(network, transactions, partition, config, None, Some(ckpt))
}

/// Resumes a sharded run from a snapshot written by
/// [`run_sharded_checkpointed`] and carries it to completion, optionally
/// continuing to checkpoint. The partition must match the one the snapshot
/// was written under (it is part of the fingerprint); the completed run is
/// byte-identical to an uninterrupted one.
pub fn resume_sharded(
    network: &Network,
    transactions: &[Transaction],
    partition: &Partition,
    config: &ShardedConfig,
    snapshot_path: &std::path::Path,
    ckpt: Option<&CheckpointSpec>,
) -> Result<SimReport, SnapshotError> {
    let snap = snapshot::read_snapshot(snapshot_path)?;
    let fp = fingerprint_sharded(network, transactions, partition, config);
    snap.check(snapshot::ENGINE_SHARDED, fp)?;
    let mut state = decode_sharded_core(
        snap.section(snapshot::SEC_CORE)?,
        network,
        partition,
        config,
        snap.progress,
    )?;
    apply_sharded_ext(
        &mut state,
        snap.section(snapshot::SEC_SHARD_EXT)?,
        network,
        config,
    )?;
    run_sharded_inner(network, transactions, partition, config, Some(state), ckpt)
}

fn run_sharded_inner(
    network: &Network,
    transactions: &[Transaction],
    partition: &Partition,
    config: &ShardedConfig,
    resume: Option<ShardedResume>,
    ckpt: Option<&CheckpointSpec>,
) -> Result<SimReport, SnapshotError> {
    assert!(config.end_time > 0.0, "end_time must be positive");
    assert!(
        config.delta > 0.0 && config.poll_interval > 0.0 && config.deadline > 0.0,
        "durations must be positive"
    );
    assert!(config.mtu.is_positive(), "MTU must be positive");
    assert_eq!(
        partition.node_shards().len(),
        network.num_nodes(),
        "partition must match the network"
    );
    assert_eq!(partition.channel_owners().len(), network.num_channels());
    assert!(config.max_queue_len > 0, "max_queue_len must be positive");
    if let Some(fees) = config.fees.as_ref() {
        assert_eq!(
            fees.per_channel().len(),
            network.num_channels(),
            "fee schedule must cover the network"
        );
    }
    if let Some(cc) = config.congestion.as_ref() {
        cc.validate();
    }
    if let Some(rb) = config.rebalance.as_ref() {
        rb.validate();
    }

    let num_shards = partition.num_shards();
    let clock = Clockwork {
        end_epoch: (config.end_time / EPOCH + 1e-9).floor() as u64,
        delta_epochs: epochs_of(config.delta),
        poll_epochs: epochs_of(config.poll_interval),
        deadline_epochs: epochs_of(config.deadline),
        sample_epochs: config
            .telemetry
            .sample_interval()
            .map_or(u64::MAX, epochs_of),
    };

    // Quantized fault schedule, shared by every shard.
    let plan_events: Vec<(u64, u64, FaultEvent)> = config
        .faults
        .as_ref()
        .map(|plan| {
            plan.events
                .iter()
                .enumerate()
                .map(|(i, (t, ev))| {
                    let epoch = ((t / EPOCH).ceil() as i64).max(1) as u64;
                    (epoch, i as u64, ev.clone())
                })
                .filter(|(epoch, _, _)| *epoch <= clock.end_epoch)
                .collect()
        })
        .unwrap_or_default();

    let initial_ledger = Ledger::new(network);
    let initial_snapshot: Vec<[i64; 2]> = network
        .channels()
        .iter()
        .map(|ch| {
            let (a, b) = initial_ledger.balances(ch.id);
            [a.micros(), b.micros()]
        })
        .collect();

    let fp = if ckpt.is_some() {
        fingerprint_sharded(network, transactions, partition, config)
    } else {
        0
    };
    let start_epoch = resume.as_ref().map_or(0, |r| r.epoch);
    if start_epoch > clock.end_epoch {
        return Err(SnapshotError::Corrupt {
            what: format!(
                "snapshot progress {start_epoch} is beyond the configured end epoch {}",
                clock.end_epoch
            ),
        });
    }
    let resume_slots: Vec<Mutex<Option<ShardResume>>> = match resume {
        Some(r) => r.shards.into_iter().map(|s| Mutex::new(Some(s))).collect(),
        None => (0..num_shards).map(|_| Mutex::new(None)).collect(),
    };

    let inboxes: Vec<Mutex<Vec<Msg>>> = (0..num_shards).map(|_| Mutex::new(Vec::new())).collect();
    let published: Vec<PublishSlot> = (0..num_shards).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(num_shards);
    let ckpt_blobs: Vec<Mutex<Vec<u8>>> = (0..num_shards).map(|_| Mutex::new(Vec::new())).collect();
    let ckpt_ext_blobs: Vec<Mutex<Vec<u8>>> =
        (0..num_shards).map(|_| Mutex::new(Vec::new())).collect();
    let ckpt_err: Mutex<Option<SnapshotError>> = Mutex::new(None);

    let outputs: Vec<Result<ShardOutput, ()>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            let inboxes = &inboxes;
            let published = &published;
            let barrier = &barrier;
            let initial_ledger = &initial_ledger;
            let initial_snapshot = &initial_snapshot;
            let plan_events = &plan_events;
            let resume_slots = &resume_slots;
            let ckpt_blobs = &ckpt_blobs;
            let ckpt_ext_blobs = &ckpt_ext_blobs;
            let ckpt_err = &ckpt_err;
            handles.push(scope.spawn(move || {
                run_shard(
                    shard as u16,
                    network,
                    transactions,
                    partition,
                    config,
                    clock,
                    initial_ledger,
                    initial_snapshot,
                    plan_events,
                    inboxes,
                    published,
                    barrier,
                    start_epoch,
                    &resume_slots[shard],
                    fp,
                    ckpt,
                    ckpt_blobs,
                    ckpt_ext_blobs,
                    ckpt_err,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut outs = Vec::with_capacity(num_shards);
    for r in outputs {
        match r {
            Ok(out) => outs.push(out),
            Err(()) => {
                return Err(lock_ok(&ckpt_err).take().unwrap_or(SnapshotError::Corrupt {
                    what: "checkpoint write failed".to_string(),
                }))
            }
        }
    }
    Ok(merge_outputs(network, partition, config, clock, outs))
}

/// One shard's published dirty-balance slot: `(channel index, micros a,
/// micros b)` triples, cleared and rewritten by the owning shard each epoch.
type PublishSlot = Mutex<Vec<(u32, i64, i64)>>;

/// One shard's whole run: the BSP epoch loop over intake → compute →
/// exchange, ending with its contribution to the deterministic merge.
///
/// Returns `Err(())` only when a checkpoint write failed; the actual
/// [`SnapshotError`] is published through `ckpt_err` by shard 0 and the
/// marker makes every shard leave the barrier protocol together.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::too_many_lines)]
fn run_shard(
    shard: u16,
    network: &Network,
    transactions: &[Transaction],
    partition: &Partition,
    config: &ShardedConfig,
    clock: Clockwork,
    initial_ledger: &Ledger,
    initial_snapshot: &[[i64; 2]],
    plan_events: &[(u64, u64, FaultEvent)],
    inboxes: &[Mutex<Vec<Msg>>],
    published: &[PublishSlot],
    barrier: &Barrier,
    start_epoch: u64,
    resume: &Mutex<Option<ShardResume>>,
    fp: u32,
    ckpt: Option<&CheckpointSpec>,
    ckpt_blobs: &[Mutex<Vec<u8>>],
    ckpt_ext_blobs: &[Mutex<Vec<u8>>],
    ckpt_err: &Mutex<Option<SnapshotError>>,
) -> Result<ShardOutput, ()> {
    let num_shards = partition.num_shards() as u64;
    let mut ctx = if let Some(r) = lock_ok(resume).take() {
        // Arrivals are a pure function of the restored payment slab, built
        // exactly as the fresh-start path builds them.
        let mut arrivals: Vec<(u64, usize)> = r
            .payments
            .iter()
            .enumerate()
            .map(|(i, p)| (p.arrival_epoch, i))
            .collect();
        arrivals.sort_unstable();
        ShardCtx {
            shard,
            network,
            partition,
            cfg: config,
            clock,
            scheme: r.scheme,
            ledger: r.ledger,
            audit: r.audit,
            faults: r.faults,
            plan_events: plan_events.to_vec(),
            plan_cursor: r.plan_cursor,
            snapshot: r.snapshot,
            dirty: Vec::new(),
            pending_msgs: r.pending_msgs,
            staged: (0..num_shards).map(|_| Vec::new()).collect(),
            payments: r.payments,
            pending: r.pending,
            arrivals,
            arrival_cursor: r.arrival_cursor,
            trace: r.trace,
            tel_on: config.telemetry.is_enabled(),
            units_sent: r.units_sent,
            series: r.series,
            samples: r.samples,
            violations: r.violations,
            stats: r.stats,
            counters: r.counters,
            arrived_count: r.arrived_count,
            completed_count: r.completed_count,
            attempted_micros: r.attempted_micros,
            delivered_micros: r.delivered_micros,
            queues: r.queues,
            routing_fees_micros: r.routing_fees_micros,
            rebalance_pending: r.rebalance_pending,
            rebalance_applies: r.rebalance_applies,
            rebal_transactions: r.rebal_transactions,
            rebal_moved_micros: r.rebal_moved_micros,
            rebal_fees_micros: r.rebal_fees_micros,
        }
    } else {
        // This shard's payments: ids assigned round-robin; slab sorted by
        // id so `payment_index` can binary-search.
        let mut payments: Vec<LocalPayment> = transactions
            .iter()
            .filter(|tx| tx.id.0 % num_shards == u64::from(shard))
            .filter_map(|tx| {
                let arrival_epoch = ((tx.arrival / EPOCH).ceil() as i64).max(1) as u64;
                (arrival_epoch <= clock.end_epoch).then(|| LocalPayment {
                    id: tx.id.0,
                    src: tx.src,
                    dst: tx.dst,
                    amount: tx.amount,
                    arrival_epoch,
                    deadline_epoch: arrival_epoch + clock.deadline_epochs,
                    delivered: Amount::ZERO,
                    inflight: Amount::ZERO,
                    status: PaymentStatus::Pending,
                    delay: None,
                    next_seq: 0,
                    blacklist: Vec::new(),
                    fail_count: 0,
                    not_before_epoch: 0,
                    window: config
                        .congestion
                        .as_ref()
                        .map_or(0.0, |cc| cc.initial_window),
                    outstanding: 0,
                })
            })
            .collect();
        payments.sort_by_key(|p| p.id);
        let mut arrivals: Vec<(u64, usize)> = payments
            .iter()
            .enumerate()
            .map(|(i, p)| (p.arrival_epoch, i))
            .collect();
        arrivals.sort_unstable();

        let ledger = initial_ledger.clone();
        let audit = config.audit.then(|| LedgerAudit::new(&ledger));
        let faults = config
            .faults
            .as_ref()
            .map(|plan| FaultState::new(plan, network));

        ShardCtx {
            shard,
            network,
            partition,
            cfg: config,
            clock,
            scheme: config.scheme.build(),
            ledger,
            audit,
            faults,
            plan_events: plan_events.to_vec(),
            plan_cursor: 0,
            snapshot: initial_snapshot.to_vec(),
            dirty: Vec::new(),
            pending_msgs: BTreeMap::new(),
            staged: (0..num_shards).map(|_| Vec::new()).collect(),
            payments,
            pending: Vec::new(),
            arrivals,
            arrival_cursor: 0,
            trace: Vec::new(),
            tel_on: config.telemetry.is_enabled(),
            units_sent: 0,
            series: Vec::new(),
            samples: Vec::new(),
            violations: Vec::new(),
            stats: ShardStats::default(),
            counters: ShardCounters::default(),
            arrived_count: 0,
            completed_count: 0,
            attempted_micros: 0,
            delivered_micros: 0,
            queues: BTreeMap::new(),
            routing_fees_micros: 0,
            rebalance_pending: vec![false; network.num_channels()],
            rebalance_applies: Vec::new(),
            rebal_transactions: 0,
            rebal_moved_micros: 0,
            rebal_fees_micros: 0,
        }
    };

    let me = shard as usize;
    let lane = u32::from(shard);
    let tel = &config.telemetry;
    for epoch in (start_epoch + 1)..=clock.end_epoch {
        // Intake: messages and balance updates published last epoch.
        {
            let _span = tel.span_enter_lane(Phase::MessageMerge, lane);
            let mut inbox = lock_ok(&inboxes[me]);
            for msg in inbox.drain(..) {
                ctx.pending_msgs
                    .entry(msg.fire_epoch)
                    .or_default()
                    .push(msg);
            }
            for slot in published {
                for &(c, a, b) in lock_ok(slot).iter() {
                    ctx.snapshot[c as usize] = [a, b];
                }
            }
        }

        // Compute: everything here touches only shard-owned state.
        {
            let _span = tel.span_enter_lane(Phase::EpochCompute, lane);
            tel.span_sim(Phase::EpochCompute, t_of(epoch));
            ctx.apply_faults(epoch);
            ctx.process_messages(epoch);
            ctx.rebalance_step(epoch);
            ctx.drain_queues(epoch);
            ctx.process_arrivals(epoch);
            if epoch % clock.poll_epochs == 0 {
                ctx.tick(epoch);
            }
            if epoch % clock.sample_epochs == 0 {
                ctx.sample(epoch);
            }
            if let Some(a) = ctx.audit.as_mut() {
                a.check(&ctx.ledger, t_of(epoch), "epoch");
            }
        }

        {
            let _span = tel.span_enter_lane(Phase::BarrierWait, lane);
            barrier.wait();
        }

        // Exchange: publish dirty balances, deliver staged messages.
        {
            let mut slot = lock_ok(&published[me]);
            slot.clear();
            ctx.dirty.sort_unstable();
            ctx.dirty.dedup();
            for &c in &ctx.dirty {
                let (a, b) = ctx.ledger.balances(ChannelId(c));
                slot.push((c, a.micros(), b.micros()));
            }
            ctx.counters.dirty_published += slot.len() as u64;
            ctx.dirty.clear();
        }
        for (to, staged) in ctx.staged.iter_mut().enumerate() {
            if !staged.is_empty() {
                lock_ok(&inboxes[to]).append(staged);
            }
        }

        {
            let _span = tel.span_enter_lane(Phase::BarrierWait, lane);
            barrier.wait();
        }

        // Checkpoint: at the epoch barrier, every shard's state is
        // quiescent (staged and dirty are drained; nothing mutates the
        // inboxes or publish slots until the next exchange, which is gated
        // behind the next barrier). Each shard performs next epoch's intake
        // early — an idempotent step: the inbox drain leaves it empty and
        // re-applying the published balances writes the same values — so
        // that the captured state needs no in-flight mailbox contents.
        // Shard 0 then assembles the blobs and writes the snapshot file.
        // The epoch set is a pure function of the config, so every shard
        // crosses the same number of barriers.
        if let Some(ck) = ckpt {
            if epoch % ck.every == 0 {
                {
                    let mut inbox = lock_ok(&inboxes[me]);
                    for msg in inbox.drain(..) {
                        ctx.pending_msgs
                            .entry(msg.fire_epoch)
                            .or_default()
                            .push(msg);
                    }
                }
                for slot in published {
                    for &(c, a, b) in lock_ok(slot).iter() {
                        ctx.snapshot[c as usize] = [a, b];
                    }
                }
                debug_assert!(ctx.dirty.is_empty() && ctx.staged.iter().all(Vec::is_empty));
                *lock_ok(&ckpt_blobs[me]) = encode_shard_blob(&ctx);
                *lock_ok(&ckpt_ext_blobs[me]) = encode_shard_ext(&ctx);
                barrier.wait();
                if me == 0 {
                    let mut e = Enc::new();
                    e.u64(epoch);
                    e.u32(num_shards as u32);
                    for blob in ckpt_blobs {
                        e.bytes(&lock_ok(blob));
                    }
                    let core = e.into_bytes();
                    let mut x = Enc::new();
                    x.u32(num_shards as u32);
                    for blob in ckpt_ext_blobs {
                        x.bytes(&lock_ok(blob));
                    }
                    let ext = x.into_bytes();
                    if let Err(err) = snapshot::write_snapshot(
                        &ck.dir,
                        snapshot::ENGINE_SHARDED,
                        fp,
                        epoch,
                        &[(snapshot::SEC_CORE, core), (snapshot::SEC_SHARD_EXT, ext)],
                    ) {
                        *lock_ok(ckpt_err) = Some(err);
                    }
                }
                barrier.wait();
                if lock_ok(ckpt_err).is_some() {
                    return Err(());
                }
            }
        }
    }

    let mut violations = ctx.violations;
    if let Some(mut a) = ctx.audit {
        a.check(&ctx.ledger, config.end_time, "final");
        violations.extend(a.into_violations());
    }

    Ok(ShardOutput {
        trace: ctx.trace,
        payments: ctx.payments,
        ledger: ctx.ledger,
        units_sent: ctx.units_sent,
        series: ctx.series,
        samples: ctx.samples,
        violations,
        stats: ctx.stats,
        counters: ctx.counters,
        routing_fees_micros: ctx.routing_fees_micros,
        rebal_transactions: ctx.rebal_transactions,
        rebal_moved_micros: ctx.rebal_moved_micros,
        rebal_fees_micros: ctx.rebal_fees_micros,
    })
}

/// Fingerprint of everything that must match between the checkpointing run
/// and the resuming run: simulation inputs, engine configuration, the fault
/// plan, telemetry presence, and the partition (payment ownership is
/// `id % num_shards`, so per-shard blobs are only meaningful under the
/// partition that wrote them).
fn fingerprint_sharded(
    network: &Network,
    transactions: &[Transaction],
    partition: &Partition,
    config: &ShardedConfig,
) -> u32 {
    let mut e = Enc::new();
    snapshot::enc_inputs(&mut e, network, transactions);
    e.str(config.scheme.name());
    e.f64(config.end_time);
    e.f64(config.delta);
    e.i64(config.mtu.micros());
    e.f64(config.poll_interval);
    e.f64(config.deadline);
    e.bool(config.record_series);
    e.bool(config.audit);
    match &config.faults {
        Some(plan) => {
            e.u8(1);
            snapshot::enc_json(&mut e, &plan.config);
            e.seq(&plan.events, |e, (t, ev)| {
                e.f64(*t);
                enc_fault_event(e, ev);
            });
        }
        None => e.u8(0),
    }
    e.bool(config.telemetry.is_enabled());
    e.f64(config.telemetry.sample_interval().unwrap_or(f64::NAN));
    e.str(config.policy.name());
    e.str(config.source_policy.name());
    e.u8(match config.queue_policy {
        QueuePolicy::Fifo => 0,
        QueuePolicy::SmallestFirst => 1,
        QueuePolicy::EarliestDeadline => 2,
    });
    e.usize(config.max_queue_len);
    match &config.fees {
        Some(f) => {
            e.u8(1);
            e.seq(&f.per_channel(), |e, &(base, ppm)| {
                e.i64(base.micros());
                e.u32(ppm);
            });
        }
        None => e.u8(0),
    }
    match &config.congestion {
        Some(cc) => {
            e.u8(1);
            e.f64(cc.initial_window);
            e.f64(cc.additive_increase);
            e.f64(cc.multiplicative_decrease);
            e.f64(cc.min_window);
            e.f64(cc.max_window);
        }
        None => e.u8(0),
    }
    match &config.rebalance {
        Some(rb) => {
            e.u8(1);
            e.f64(rb.check_interval);
            e.f64(rb.imbalance_threshold);
            e.f64(rb.correction_fraction);
            e.i64(rb.fee.micros());
            e.f64(rb.confirmation_delay);
        }
        None => e.u8(0),
    }
    e.usize(partition.num_shards());
    e.seq(partition.node_shards(), |e, &s| e.u32(u32::from(s)));
    e.seq(partition.channel_owners(), |e, &s| e.u32(u32::from(s)));
    crc32(&e.into_bytes())
}

/// Decoded checkpoint of a whole sharded run: the barrier epoch it was
/// taken at plus one restored worker state per shard.
struct ShardedResume {
    epoch: u64,
    shards: Vec<ShardResume>,
}

/// One shard's restored state, rebuilt host-side before the worker threads
/// start (scheme restored, fault mask re-applied, messages re-linked).
struct ShardResume {
    scheme: Box<dyn RoutingScheme>,
    ledger: Ledger,
    audit: Option<LedgerAudit>,
    faults: Option<FaultState>,
    plan_cursor: usize,
    snapshot: Vec<[i64; 2]>,
    pending_msgs: BTreeMap<u64, Vec<Msg>>,
    payments: Vec<LocalPayment>,
    pending: Vec<usize>,
    arrival_cursor: usize,
    trace: Vec<(Key, TraceEvent)>,
    units_sent: u64,
    series: Vec<SeriesPartial>,
    samples: Vec<SamplePartial>,
    violations: Vec<AuditViolation>,
    stats: ShardStats,
    counters: ShardCounters,
    arrived_count: u64,
    completed_count: u64,
    attempted_micros: i64,
    delivered_micros: i64,
    queues: BTreeMap<(u32, u8), Vec<QueuedUnit>>,
    routing_fees_micros: i64,
    rebalance_pending: Vec<bool>,
    rebalance_applies: Vec<(u64, u32)>,
    rebal_transactions: u64,
    rebal_moved_micros: i64,
    rebal_fees_micros: i64,
}

fn enc_msg(e: &mut Enc, msg: &Msg) {
    e.u64(msg.unit.payment);
    e.u32(msg.unit.seq);
    e.i64(msg.unit.amount.micros());
    enc_path(e, &msg.unit.path);
    e.u64(msg.unit.deadline_epoch);
    match &msg.body {
        MsgBody::SettleHop { hop } => {
            e.u8(0);
            e.u32(*hop);
        }
        MsgBody::RefundHop { hop } => {
            e.u8(1);
            e.u32(*hop);
        }
        MsgBody::LockHop { hop } => {
            e.u8(2);
            e.u32(*hop);
        }
        MsgBody::UnitDelivered => e.u8(3),
        MsgBody::UnitFailed { blamed, cause } => {
            e.u8(4);
            e.u32(blamed.index() as u32);
            e.u8(match cause {
                FailCause::Liquidity => 0,
                FailCause::Outage => 1,
                FailCause::Dropped => 2,
                FailCause::Griefed => 3,
            });
        }
    }
}

fn dec_msg(
    d: &mut Dec,
    network: &Network,
    config: &ShardedConfig,
    fire_epoch: u64,
) -> Result<Msg, SnapshotError> {
    let payment = d.u64()?;
    let seq = d.u32()?;
    let amount = Amount::from_micros(d.i64()?);
    let path = dec_path(d, network)?;
    let deadline_epoch = d.u64()?;
    // The fate is a pure hash of (fault seed, payment, unit) — recompute it
    // instead of trusting snapshot bytes. Hop amounts likewise: a pure
    // function of (fee schedule, path, amount).
    let fate = match config.faults.as_ref() {
        Some(plan) => unit_fate(&plan.config, payment, seq, path.hops().len()).0,
        None => Fate::Deliver { jitter_epochs: 0 },
    };
    let hop_amounts = match config.fees.as_ref() {
        Some(f) if !f.is_free() => Some(f.path_amounts(&path, amount)),
        _ => None,
    };
    let hops = path.hops().len() as u32;
    let check_hop = |hop: u32| {
        if hop < hops {
            Ok(hop)
        } else {
            Err(SnapshotError::Corrupt {
                what: format!("message hop {hop} beyond a {hops}-hop path"),
            })
        }
    };
    let body = match d.u8()? {
        0 => MsgBody::SettleHop {
            hop: check_hop(d.u32()?)?,
        },
        1 => MsgBody::RefundHop {
            hop: check_hop(d.u32()?)?,
        },
        2 => MsgBody::LockHop {
            hop: check_hop(d.u32()?)?,
        },
        3 => MsgBody::UnitDelivered,
        4 => {
            let blamed = ChannelId(d.u32()?);
            if blamed.index() >= network.num_channels() {
                return Err(SnapshotError::Corrupt {
                    what: format!("blamed channel {} out of range", blamed.index()),
                });
            }
            let cause = match d.u8()? {
                0 => FailCause::Liquidity,
                1 => FailCause::Outage,
                2 => FailCause::Dropped,
                3 => FailCause::Griefed,
                tag => {
                    return Err(SnapshotError::Corrupt {
                        what: format!("bad failure cause byte {tag}"),
                    })
                }
            };
            MsgBody::UnitFailed { blamed, cause }
        }
        tag => {
            return Err(SnapshotError::Corrupt {
                what: format!("bad message body byte {tag}"),
            })
        }
    };
    Ok(Msg {
        fire_epoch,
        body,
        unit: Arc::new(UnitInfo {
            payment,
            seq,
            amount,
            path,
            fate,
            hop_amounts,
            deadline_epoch,
        }),
    })
}

/// Binary capture of one shard's quiescent barrier state, written by
/// [`encode_shard_blob`] and read back by [`decode_shard_blob`].
fn encode_shard_blob(ctx: &ShardCtx<'_>) -> Vec<u8> {
    let mut e = Enc::new();
    let nq = ctx.network.num_channels();
    e.usize(nq);
    for i in 0..nq {
        let raw = ctx.ledger.export_channel(ChannelId(i as u32));
        for v in raw {
            e.i64(v);
        }
        e.i64(ctx.snapshot[i][0]);
        e.i64(ctx.snapshot[i][1]);
    }
    match &ctx.audit {
        Some(a) => {
            e.u8(1);
            snapshot::enc_json(&mut e, &a.export_state());
        }
        None => e.u8(0),
    }
    match &ctx.faults {
        Some(fs) => {
            e.u8(1);
            let snap = fs.export_state();
            e.bytes(&snap.down_causes);
            e.seq(&snap.node_down, |e, &b| e.bool(b));
            e.u64(snap.rng_state);
            snapshot::enc_json(&mut e, &snap.stats);
        }
        None => e.u8(0),
    }
    e.usize(ctx.plan_cursor);
    e.usize(ctx.pending_msgs.len());
    for (&fire_epoch, msgs) in &ctx.pending_msgs {
        e.u64(fire_epoch);
        // Inbox drain order varies with thread interleaving; the engine
        // sorts by key before processing, so sort here too — snapshot bytes
        // stay a pure function of the run's content.
        let mut ordered: Vec<&Msg> = msgs.iter().collect();
        ordered.sort_unstable_by_key(|m| m.key());
        e.usize(ordered.len());
        for msg in ordered {
            enc_msg(&mut e, msg);
        }
    }
    e.usize(ctx.payments.len());
    for p in &ctx.payments {
        e.u64(p.id);
        e.u32(p.src.0);
        e.u32(p.dst.0);
        e.i64(p.amount.micros());
        e.u64(p.arrival_epoch);
        e.u64(p.deadline_epoch);
        e.i64(p.delivered.micros());
        e.i64(p.inflight.micros());
        e.u8(match p.status {
            PaymentStatus::Pending => 0,
            PaymentStatus::Completed => 1,
            PaymentStatus::Abandoned => 2,
        });
        match p.delay {
            Some(t) => {
                e.u8(1);
                e.f64(t);
            }
            None => e.u8(0),
        }
        e.u32(p.next_seq);
        e.seq(&p.blacklist, |e, &(c, until)| {
            e.u32(c.index() as u32);
            e.u64(until);
        });
        e.u32(p.fail_count);
        e.u64(p.not_before_epoch);
    }
    e.seq(&ctx.pending, |e, &i| e.usize(i));
    e.usize(ctx.arrival_cursor);
    e.usize(ctx.trace.len());
    for (k, _) in &ctx.trace {
        e.u64(k.epoch);
        e.u8(k.rank);
        e.u64(k.a);
        e.u64(k.b);
    }
    let events: Vec<TraceEvent> = ctx.trace.iter().map(|(_, ev)| ev.clone()).collect();
    snapshot::enc_json(&mut e, &events);
    e.u64(ctx.units_sent);
    e.seq(&ctx.series, |e, s| {
        e.u64(s.epoch);
        e.u64(s.arrived);
        e.u64(s.completed);
        e.i64(s.attempted_micros);
        e.i64(s.delivered_micros);
    });
    e.usize(ctx.samples.len());
    for s in &ctx.samples {
        e.u64(s.epoch);
        e.u32(s.pending);
        e.seq(&s.channels, |e, &(c, imb, ratio, inflight, qdepth)| {
            e.u32(c);
            e.f64(imb);
            e.f64(ratio);
            e.i64(inflight);
            e.u32(qdepth);
        });
    }
    snapshot::enc_json(&mut e, &ctx.violations);
    for v in [
        ctx.stats.outages,
        ctx.stats.recoveries,
        ctx.stats.node_crashes,
        ctx.stats.units_refunded_by_outage,
        ctx.stats.units_dropped,
        ctx.stats.units_jittered,
        ctx.stats.units_griefed,
        ctx.stats.retries,
        ctx.stats.blacklistings,
        ctx.stats.payments_failed,
    ] {
        e.u64(v);
    }
    for v in [
        ctx.counters.events_processed,
        ctx.counters.settle_msgs,
        ctx.counters.refund_msgs,
        ctx.counters.lock_msgs,
        ctx.counters.control_msgs,
        ctx.counters.dirty_published,
    ] {
        e.u64(v);
    }
    e.u64(ctx.arrived_count);
    e.u64(ctx.completed_count);
    e.i64(ctx.attempted_micros);
    e.i64(ctx.delivered_micros);
    match ctx.scheme.checkpoint_state() {
        Some(bytes) => {
            e.u8(1);
            e.bytes(&bytes);
        }
        None => e.u8(0),
    }
    e.into_bytes()
}

/// Decodes the sharded `SEC_CORE` section: the barrier epoch, the shard
/// count, and one per-shard blob. Every structural problem is a
/// [`SnapshotError::Corrupt`]; nothing panics.
fn decode_sharded_core(
    bytes: &[u8],
    network: &Network,
    partition: &Partition,
    config: &ShardedConfig,
    progress: u64,
) -> Result<ShardedResume, SnapshotError> {
    let mut d = Dec::new(bytes);
    let epoch = d.u64()?;
    if epoch != progress {
        return Err(SnapshotError::Corrupt {
            what: format!("core section epoch {epoch} disagrees with header progress {progress}"),
        });
    }
    let num_shards = d.u32()? as usize;
    if num_shards != partition.num_shards() {
        return Err(SnapshotError::Corrupt {
            what: format!(
                "snapshot has {num_shards} shards, partition has {}",
                partition.num_shards()
            ),
        });
    }
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        let blob = d.bytes()?;
        shards.push(decode_shard_blob(blob, network, config)?);
    }
    d.expect_end()?;
    Ok(ShardedResume { epoch, shards })
}

/// Decodes and validates one shard's blob, rebuilding the live state the
/// worker thread starts from.
#[allow(clippy::too_many_lines)]
fn decode_shard_blob(
    bytes: &[u8],
    network: &Network,
    config: &ShardedConfig,
) -> Result<ShardResume, SnapshotError> {
    let mut d = Dec::new(bytes);
    let nq = d.usize()?;
    if nq != network.num_channels() {
        return Err(SnapshotError::Corrupt {
            what: format!(
                "shard blob covers {nq} channels, network has {}",
                network.num_channels()
            ),
        });
    }
    let mut ledger = Ledger::new(network);
    let mut balance_snapshot = Vec::with_capacity(nq);
    for i in 0..nq {
        let raw = [d.i64()?, d.i64()?, d.i64()?, d.i64()?];
        ledger.restore_channel(ChannelId(i as u32), raw);
        balance_snapshot.push([d.i64()?, d.i64()?]);
    }
    let audit = match d.u8()? {
        0 => None,
        1 => {
            let state: AuditState = snapshot::dec_json(&mut d)?;
            Some(LedgerAudit::from_state(state))
        }
        tag => {
            return Err(SnapshotError::Corrupt {
                what: format!("bad audit presence byte {tag}"),
            })
        }
    };
    if audit.is_some() != config.audit {
        return Err(SnapshotError::Corrupt {
            what: "snapshot and config disagree about auditing".to_string(),
        });
    }
    let faults = match d.u8()? {
        0 => None,
        1 => {
            let down_causes = d.bytes()?.to_vec();
            let node_down = d.seq(|d| d.bool())?;
            let rng_state = d.u64()?;
            let stats: FaultStats = snapshot::dec_json(&mut d)?;
            let plan = config
                .faults
                .as_ref()
                .ok_or_else(|| SnapshotError::Corrupt {
                    what: "snapshot has fault state but config has no fault plan".to_string(),
                })?;
            let mut fs = FaultState::new(plan, network);
            fs.restore_state(crate::faults::FaultStateSnapshot {
                down_causes,
                node_down,
                rng_state,
                stats,
            })
            .map_err(|what| SnapshotError::Corrupt { what })?;
            Some(fs)
        }
        tag => {
            return Err(SnapshotError::Corrupt {
                what: format!("bad fault presence byte {tag}"),
            })
        }
    };
    if faults.is_none() && config.faults.is_some() {
        return Err(SnapshotError::Corrupt {
            what: "config has a fault plan but snapshot has no fault state".to_string(),
        });
    }
    let plan_cursor = d.usize()?;
    let n_buckets = d.usize()?;
    let mut pending_msgs: BTreeMap<u64, Vec<Msg>> = BTreeMap::new();
    let mut last_epoch = None;
    for _ in 0..n_buckets {
        let fire_epoch = d.u64()?;
        if last_epoch.is_some_and(|prev| prev >= fire_epoch) {
            return Err(SnapshotError::Corrupt {
                what: "message buckets out of order".to_string(),
            });
        }
        last_epoch = Some(fire_epoch);
        let n_msgs = d.usize()?;
        let mut msgs = Vec::with_capacity(n_msgs);
        for _ in 0..n_msgs {
            msgs.push(dec_msg(&mut d, network, config, fire_epoch)?);
        }
        pending_msgs.insert(fire_epoch, msgs);
    }
    let n_payments = d.usize()?;
    let mut payments: Vec<LocalPayment> = Vec::with_capacity(n_payments);
    for _ in 0..n_payments {
        let id = d.u64()?;
        if payments.last().is_some_and(|p: &LocalPayment| p.id >= id) {
            return Err(SnapshotError::Corrupt {
                what: "payment slab not sorted by id".to_string(),
            });
        }
        let src = NodeId(d.u32()?);
        let dst = NodeId(d.u32()?);
        if src.index() >= network.num_nodes() || dst.index() >= network.num_nodes() {
            return Err(SnapshotError::Corrupt {
                what: format!("payment {id} endpoints out of range"),
            });
        }
        let amount = Amount::from_micros(d.i64()?);
        let arrival_epoch = d.u64()?;
        let deadline_epoch = d.u64()?;
        let delivered = Amount::from_micros(d.i64()?);
        let inflight = Amount::from_micros(d.i64()?);
        let status = match d.u8()? {
            0 => PaymentStatus::Pending,
            1 => PaymentStatus::Completed,
            2 => PaymentStatus::Abandoned,
            tag => {
                return Err(SnapshotError::Corrupt {
                    what: format!("bad payment status byte {tag}"),
                })
            }
        };
        let delay = match d.u8()? {
            0 => None,
            1 => {
                let t = d.f64()?;
                if !t.is_finite() {
                    return Err(SnapshotError::Corrupt {
                        what: format!("non-finite completion delay {t}"),
                    });
                }
                Some(t)
            }
            tag => {
                return Err(SnapshotError::Corrupt {
                    what: format!("bad delay presence byte {tag}"),
                })
            }
        };
        let next_seq = d.u32()?;
        let blacklist = d.seq(|d| Ok((ChannelId(d.u32()?), d.u64()?)))?;
        for &(c, _) in &blacklist {
            if c.index() >= network.num_channels() {
                return Err(SnapshotError::Corrupt {
                    what: format!("blacklisted channel {} out of range", c.index()),
                });
            }
        }
        payments.push(LocalPayment {
            id,
            src,
            dst,
            amount,
            arrival_epoch,
            deadline_epoch,
            delivered,
            inflight,
            status,
            delay,
            next_seq,
            blacklist,
            fail_count: d.u32()?,
            not_before_epoch: d.u64()?,
            // Congestion state is restored from the SEC_SHARD_EXT section.
            window: config
                .congestion
                .as_ref()
                .map_or(0.0, |cc| cc.initial_window),
            outstanding: 0,
        });
    }
    let pending = d.seq(|d| d.usize())?;
    for &i in &pending {
        if i >= payments.len() {
            return Err(SnapshotError::Corrupt {
                what: format!("pending index {i} out of range"),
            });
        }
    }
    let arrival_cursor = d.usize()?;
    if arrival_cursor > payments.len() {
        return Err(SnapshotError::Corrupt {
            what: format!(
                "arrival cursor {arrival_cursor} beyond {} payments",
                payments.len()
            ),
        });
    }
    let n_trace = d.usize()?;
    let mut keys = Vec::with_capacity(n_trace);
    for _ in 0..n_trace {
        keys.push(Key {
            epoch: d.u64()?,
            rank: d.u8()?,
            a: d.u64()?,
            b: d.u64()?,
        });
    }
    let events: Vec<TraceEvent> = snapshot::dec_json(&mut d)?;
    if events.len() != n_trace {
        return Err(SnapshotError::Corrupt {
            what: format!("{n_trace} trace keys but {} trace events", events.len()),
        });
    }
    let trace: Vec<(Key, TraceEvent)> = keys.into_iter().zip(events).collect();
    let units_sent = d.u64()?;
    let series = d.seq(|d| {
        Ok(SeriesPartial {
            epoch: d.u64()?,
            arrived: d.u64()?,
            completed: d.u64()?,
            attempted_micros: d.i64()?,
            delivered_micros: d.i64()?,
        })
    })?;
    let n_samples = d.usize()?;
    let mut samples = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let epoch = d.u64()?;
        let pending_count = d.u32()?;
        let channels = d.seq(|d| Ok((d.u32()?, d.f64()?, d.f64()?, d.i64()?, d.u32()?)))?;
        samples.push(SamplePartial {
            epoch,
            pending: pending_count,
            channels,
        });
    }
    let violations: Vec<AuditViolation> = snapshot::dec_json(&mut d)?;
    let stats = ShardStats {
        outages: d.u64()?,
        recoveries: d.u64()?,
        node_crashes: d.u64()?,
        units_refunded_by_outage: d.u64()?,
        units_dropped: d.u64()?,
        units_jittered: d.u64()?,
        units_griefed: d.u64()?,
        retries: d.u64()?,
        blacklistings: d.u64()?,
        payments_failed: d.u64()?,
    };
    let counters = ShardCounters {
        events_processed: d.u64()?,
        settle_msgs: d.u64()?,
        refund_msgs: d.u64()?,
        lock_msgs: d.u64()?,
        control_msgs: d.u64()?,
        dirty_published: d.u64()?,
    };
    let arrived_count = d.u64()?;
    let completed_count = d.u64()?;
    let attempted_micros = d.i64()?;
    let delivered_micros = d.i64()?;
    let mut scheme = config.scheme.build();
    match d.u8()? {
        0 => {}
        1 => {
            let state = d.bytes()?;
            scheme
                .restore_state(network, state)
                .map_err(|e| SnapshotError::Corrupt {
                    what: format!("routing scheme state: {e}"),
                })?;
        }
        tag => {
            return Err(SnapshotError::Corrupt {
                what: format!("bad scheme presence byte {tag}"),
            })
        }
    }
    d.expect_end()?;
    Ok(ShardResume {
        scheme,
        ledger,
        audit,
        faults,
        plan_cursor,
        snapshot: balance_snapshot,
        pending_msgs,
        payments,
        pending,
        arrival_cursor,
        trace,
        units_sent,
        series,
        samples,
        violations,
        stats,
        counters,
        arrived_count,
        completed_count,
        attempted_micros,
        delivered_micros,
        // Filled in by [`apply_sharded_ext`] from the SEC_SHARD_EXT section.
        queues: BTreeMap::new(),
        routing_fees_micros: 0,
        rebalance_pending: vec![false; network.num_channels()],
        rebalance_applies: Vec::new(),
        rebal_transactions: 0,
        rebal_moved_micros: 0,
        rebal_fees_micros: 0,
    })
}

/// Binary capture of one shard's feature-extension state (router queues,
/// fee accrual, congestion windows, rebalancing schedule) for the
/// `SEC_SHARD_EXT` snapshot section.
fn encode_shard_ext(ctx: &ShardCtx<'_>) -> Vec<u8> {
    let mut e = Enc::new();
    e.i64(ctx.routing_fees_micros);
    match ctx.cfg.congestion {
        Some(_) => {
            e.u8(1);
            // Slab order: the decode side walks the same sorted-by-id slab.
            e.seq(&ctx.payments, |e, p| {
                e.f64(p.window);
                e.u32(p.outstanding);
            });
        }
        None => e.u8(0),
    }
    match ctx.cfg.policy {
        ShardPolicy::Queued => {
            e.u8(1);
            e.usize(ctx.queues.len());
            for (&(channel, dir), q) in &ctx.queues {
                e.u32(channel);
                e.u8(dir);
                e.usize(q.len());
                for entry in q {
                    e.u64(entry.unit.payment);
                    e.u32(entry.unit.seq);
                    e.i64(entry.unit.amount.micros());
                    enc_path(&mut e, &entry.unit.path);
                    e.u64(entry.unit.deadline_epoch);
                    e.u32(entry.hop);
                    e.u64(entry.enqueued_epoch);
                }
            }
        }
        ShardPolicy::Direct => e.u8(0),
    }
    match ctx.cfg.rebalance {
        Some(_) => {
            e.u8(1);
            e.seq(&ctx.rebalance_applies, |e, &(fire, c)| {
                e.u64(fire);
                e.u32(c);
            });
            e.u64(ctx.rebal_transactions);
            e.i64(ctx.rebal_moved_micros);
            e.i64(ctx.rebal_fees_micros);
        }
        None => e.u8(0),
    }
    e.into_bytes()
}

/// Decodes the `SEC_SHARD_EXT` section into the already-decoded core
/// resume state: per-shard router queues, fee accrual, congestion windows,
/// and the rebalancing schedule. Presence flags must agree with the
/// config, mirroring the core section's audit/fault checks.
fn apply_sharded_ext(
    state: &mut ShardedResume,
    bytes: &[u8],
    network: &Network,
    config: &ShardedConfig,
) -> Result<(), SnapshotError> {
    let mut d = Dec::new(bytes);
    let num_shards = d.u32()? as usize;
    if num_shards != state.shards.len() {
        return Err(SnapshotError::Corrupt {
            what: format!(
                "extension section has {num_shards} shards, core has {}",
                state.shards.len()
            ),
        });
    }
    for shard in state.shards.iter_mut() {
        let blob = d.bytes()?;
        apply_shard_ext_blob(shard, blob, network, config)?;
    }
    d.expect_end()?;
    Ok(())
}

/// Decodes one shard's extension blob into its [`ShardResume`].
fn apply_shard_ext_blob(
    shard: &mut ShardResume,
    bytes: &[u8],
    network: &Network,
    config: &ShardedConfig,
) -> Result<(), SnapshotError> {
    let mut d = Dec::new(bytes);
    shard.routing_fees_micros = d.i64()?;
    match d.u8()? {
        0 => {
            if config.congestion.is_some() {
                return Err(SnapshotError::Corrupt {
                    what: "config has congestion control but snapshot has no windows".to_string(),
                });
            }
        }
        1 => {
            if config.congestion.is_none() {
                return Err(SnapshotError::Corrupt {
                    what: "snapshot has congestion windows but config has none".to_string(),
                });
            }
            let windows = d.seq(|d| Ok((d.f64()?, d.u32()?)))?;
            if windows.len() != shard.payments.len() {
                return Err(SnapshotError::Corrupt {
                    what: format!(
                        "{} congestion windows for {} payments",
                        windows.len(),
                        shard.payments.len()
                    ),
                });
            }
            for (p, (window, outstanding)) in shard.payments.iter_mut().zip(windows) {
                if !window.is_finite() || window <= 0.0 {
                    return Err(SnapshotError::Corrupt {
                        what: format!("bad congestion window {window}"),
                    });
                }
                p.window = window;
                p.outstanding = outstanding;
            }
        }
        tag => {
            return Err(SnapshotError::Corrupt {
                what: format!("bad congestion presence byte {tag}"),
            })
        }
    }
    match d.u8()? {
        0 => {
            if config.policy == ShardPolicy::Queued {
                return Err(SnapshotError::Corrupt {
                    what: "config uses the queued policy but snapshot has no queues".to_string(),
                });
            }
        }
        1 => {
            if config.policy != ShardPolicy::Queued {
                return Err(SnapshotError::Corrupt {
                    what: "snapshot has router queues but config is direct".to_string(),
                });
            }
            let n_queues = d.usize()?;
            let mut last_key: Option<(u32, u8)> = None;
            for _ in 0..n_queues {
                let channel = d.u32()?;
                let dir = d.u8()?;
                if channel as usize >= network.num_channels() || dir > 1 {
                    return Err(SnapshotError::Corrupt {
                        what: format!("queue key ({channel}, {dir}) out of range"),
                    });
                }
                let key = (channel, dir);
                if last_key.is_some_and(|prev| prev >= key) {
                    return Err(SnapshotError::Corrupt {
                        what: "router queues out of order".to_string(),
                    });
                }
                last_key = Some(key);
                let n_entries = d.usize()?;
                let mut q = Vec::with_capacity(n_entries);
                for _ in 0..n_entries {
                    let payment = d.u64()?;
                    let seq = d.u32()?;
                    let amount = Amount::from_micros(d.i64()?);
                    let path = dec_path(&mut d, network)?;
                    let deadline_epoch = d.u64()?;
                    let hop = d.u32()?;
                    let enqueued_epoch = d.u64()?;
                    if hop as usize >= path.hops().len() {
                        return Err(SnapshotError::Corrupt {
                            what: format!("queued unit hop {hop} beyond its path"),
                        });
                    }
                    if path.hops()[hop as usize].0.index() as u32 != channel {
                        return Err(SnapshotError::Corrupt {
                            what: format!("queued unit hop {hop} not on channel {channel}"),
                        });
                    }
                    // Fate and hop amounts are pure functions of content,
                    // recomputed exactly as `dec_msg` does.
                    let fate = match config.faults.as_ref() {
                        Some(plan) => unit_fate(&plan.config, payment, seq, path.hops().len()).0,
                        None => Fate::Deliver { jitter_epochs: 0 },
                    };
                    let hop_amounts = match config.fees.as_ref() {
                        Some(f) if !f.is_free() => Some(f.path_amounts(&path, amount)),
                        _ => None,
                    };
                    q.push(QueuedUnit {
                        unit: Arc::new(UnitInfo {
                            payment,
                            seq,
                            amount,
                            path,
                            fate,
                            hop_amounts,
                            deadline_epoch,
                        }),
                        hop,
                        enqueued_epoch,
                    });
                }
                shard.queues.insert(key, q);
            }
        }
        tag => {
            return Err(SnapshotError::Corrupt {
                what: format!("bad queue presence byte {tag}"),
            })
        }
    }
    match d.u8()? {
        0 => {
            if config.rebalance.is_some() {
                return Err(SnapshotError::Corrupt {
                    what: "config has rebalancing but snapshot has no schedule".to_string(),
                });
            }
        }
        1 => {
            if config.rebalance.is_none() {
                return Err(SnapshotError::Corrupt {
                    what: "snapshot has a rebalance schedule but config has none".to_string(),
                });
            }
            let applies = d.seq(|d| Ok((d.u64()?, d.u32()?)))?;
            for &(_, c) in &applies {
                if c as usize >= network.num_channels() {
                    return Err(SnapshotError::Corrupt {
                        what: format!("rebalance channel {c} out of range"),
                    });
                }
                shard.rebalance_pending[c as usize] = true;
            }
            shard.rebalance_applies = applies;
            shard.rebal_transactions = d.u64()?;
            shard.rebal_moved_micros = d.i64()?;
            shard.rebal_fees_micros = d.i64()?;
        }
        tag => {
            return Err(SnapshotError::Corrupt {
                what: format!("bad rebalance presence byte {tag}"),
            })
        }
    }
    d.expect_end()?;
    Ok(())
}

/// Deterministically merges the shard outputs into one [`SimReport`].
/// Every reduction is either an exact integer sum (commutative) or a
/// float fold over data sorted by content id — never by shard order.
fn merge_outputs(
    network: &Network,
    partition: &Partition,
    config: &ShardedConfig,
    clock: Clockwork,
    mut outputs: Vec<ShardOutput>,
) -> SimReport {
    let tel = &config.telemetry;

    // Trace: k-way merge by key (keys are globally unique), replayed into
    // the telemetry handle — counters and the completion-delay histogram
    // are rebuilt from the merged order, so they cannot depend on shard
    // interleaving.
    let mut all_events: Vec<(Key, TraceEvent)> =
        outputs.iter_mut().flat_map(|o| o.trace.drain(..)).collect();
    all_events.sort_unstable_by_key(|x| x.0);
    if tel.is_enabled() {
        tel.counter_add("sim.scheduler.polls", clock.end_epoch / clock.poll_epochs);
        for (_, ev) in &all_events {
            let counter = match ev {
                TraceEvent::PaymentArrived { .. } => Some("sim.payments.arrived"),
                TraceEvent::UnitSent { .. } => Some("sim.units.sent"),
                TraceEvent::UnitSettled { .. } => Some("sim.units.settled"),
                TraceEvent::UnitRefunded { .. } => Some("sim.units.refunded"),
                TraceEvent::UnitDropped { .. } => Some("sim.units.dropped"),
                TraceEvent::UnitGriefed { .. } => Some("sim.units.griefed"),
                TraceEvent::PaymentCompleted { delay, .. } => {
                    tel.histogram_observe(
                        "sim.completion_delay",
                        *delay,
                        Histogram::latency_default,
                    );
                    Some("sim.payments.completed")
                }
                TraceEvent::PaymentAbandoned { .. } => Some("sim.payments.abandoned"),
                TraceEvent::PaymentRetry { .. } => Some("sim.payments.retries"),
                TraceEvent::ChannelOutage { .. } => Some("sim.faults.outages"),
                TraceEvent::NodeCrashed { .. } => Some("sim.faults.node_crashes"),
                TraceEvent::UnitQueued { .. } => Some("sim.units.queued"),
                TraceEvent::RebalanceApplied { .. } => Some("sim.rebalance.applied"),
                _ => None,
            };
            if let Some(name) = counter {
                tel.counter_add(name, 1);
            }
            let cloned = ev.clone();
            tel.emit(move || cloned);
        }
    }

    // Per-shard observability: deterministic counters per rank, plus
    // wall-clock barrier-wait histograms when the run profiled. Kept in
    // memory only (`SimReport.shards` is `#[serde(skip)]`).
    let num_shards = partition.num_shards();
    let shard_metrics: Vec<ShardEpochMetrics> = outputs
        .iter()
        .enumerate()
        .map(|(i, o)| ShardEpochMetrics {
            shard: i as u32,
            epochs: clock.end_epoch,
            owned_payments: o.payments.len() as u64,
            owned_channels: partition
                .channel_owners()
                .iter()
                .filter(|&&s| usize::from(s) == i)
                .count() as u64,
            events_processed: o.counters.events_processed,
            settle_msgs: o.counters.settle_msgs,
            refund_msgs: o.counters.refund_msgs,
            lock_msgs: o.counters.lock_msgs,
            control_msgs: o.counters.control_msgs,
            dirty_published: o.counters.dirty_published,
            units_sent: o.units_sent,
            barrier_wait_ms: tel.profiler().and_then(|p| p.barrier_wait(i as u32)),
        })
        .collect();
    let observability = ShardObservability {
        num_shards: num_shards as u32,
        event_imbalance: imbalance_of(shard_metrics.iter().map(|s| s.events_processed)),
        payment_imbalance: imbalance_of(shard_metrics.iter().map(|s| s.owned_payments)),
        shards: shard_metrics,
    };

    // Violations: merged by content, capped like the sequential auditor.
    let mut audit_violations: Vec<AuditViolation> = outputs
        .iter_mut()
        .flat_map(|o| o.violations.drain(..))
        .collect();
    audit_violations.sort_by(|x, y| {
        x.time
            .total_cmp(&y.time)
            .then_with(|| x.event.cmp(&y.event))
            .then_with(|| format!("{:?}", x.kind).cmp(&format!("{:?}", y.kind)))
    });
    audit_violations.truncate(crate::engine::MAX_RELEASE_VIOLATIONS);

    // Payment rows, sorted by id: every float fold below follows id order.
    let mut rows: Vec<&LocalPayment> = outputs.iter().flat_map(|o| o.payments.iter()).collect();
    rows.sort_unstable_by_key(|p| p.id);
    let attempted = rows.len();
    let completed: Vec<&&LocalPayment> = rows
        .iter()
        .filter(|p| p.status == PaymentStatus::Completed)
        .collect();
    let abandoned = rows
        .iter()
        .filter(|p| p.status == PaymentStatus::Abandoned)
        .count();
    let pending_at_end = rows
        .iter()
        .filter(|p| p.status == PaymentStatus::Pending)
        .count();
    let attempted_volume = tokens(Amount::from_micros(
        rows.iter().map(|p| p.amount.micros()).sum(),
    ));
    let delivered_volume = tokens(Amount::from_micros(
        rows.iter().map(|p| p.delivered.micros()).sum(),
    ));
    let completed_volume = tokens(Amount::from_micros(
        completed.iter().map(|p| p.amount.micros()).sum(),
    ));
    let mean_completion_delay = if completed.is_empty() {
        0.0
    } else {
        completed.iter().filter_map(|p| p.delay).sum::<f64>() / completed.len() as f64
    };

    // Merged final ledger: each channel's state from its owner shard.
    let mut final_ledger = Ledger::new(network);
    for ch in network.channels() {
        let owner = partition.channel_owner(ch.id);
        final_ledger.copy_channel_state_from(&outputs[owner].ledger, ch.id);
    }

    // Series: exact integer sums per tick, ratios computed once.
    let series: Vec<(f64, f64, f64)> = if config.record_series {
        let ticks = outputs.first().map_or(0, |o| o.series.len());
        (0..ticks)
            .map(|k| {
                let epoch = outputs[0].series[k].epoch;
                let mut arrived = 0u64;
                let mut done = 0u64;
                let mut att = 0i64;
                let mut del = 0i64;
                for o in &outputs {
                    let s = o.series[k];
                    debug_assert_eq!(s.epoch, epoch);
                    arrived += s.arrived;
                    done += s.completed;
                    att += s.attempted_micros;
                    del += s.delivered_micros;
                }
                let ratio = if arrived == 0 {
                    0.0
                } else {
                    done as f64 / arrived as f64
                };
                let att_tokens = tokens(Amount::from_micros(att));
                let volume = if att_tokens > 0.0 {
                    tokens(Amount::from_micros(del)) / att_tokens
                } else {
                    0.0
                };
                (t_of(epoch), ratio, volume)
            })
            .collect()
    } else {
        Vec::new()
    };

    // Network samples: per-channel figures folded in channel-id order.
    let network_series: Vec<NetworkSample> = if tel.is_enabled() {
        let count = outputs.first().map_or(0, |o| o.samples.len());
        (0..count)
            .map(|k| {
                let epoch = outputs[0].samples[k].epoch;
                let mut pending = 0u32;
                let mut per_channel: Vec<(u32, f64, i64, u32)> = Vec::new();
                for o in &outputs {
                    let s = &o.samples[k];
                    debug_assert_eq!(s.epoch, epoch);
                    pending += s.pending;
                    per_channel.extend(
                        s.channels
                            .iter()
                            .map(|&(c, _, ratio, inflight, qdepth)| (c, ratio, inflight, qdepth)),
                    );
                }
                per_channel.sort_unstable_by_key(|&(c, ..)| c);
                let mean_imbalance = if per_channel.is_empty() {
                    0.0
                } else {
                    per_channel.iter().map(|&(_, r, _, _)| r).sum::<f64>()
                        / per_channel.len() as f64
                };
                let inflight_micros: i64 = per_channel.iter().map(|&(_, _, i, _)| i).sum();
                let max_queue_depth = per_channel.iter().map(|&(_, _, _, q)| q).max().unwrap_or(0);
                NetworkSample {
                    t: t_of(epoch),
                    mean_imbalance,
                    total_inflight: tokens(Amount::from_micros(inflight_micros)),
                    pending,
                    max_queue_depth,
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    // Fault stats: each field counted at exactly one owner, so the sum is
    // partition-independent.
    let fault_stats: Option<FaultStats> = config.faults.as_ref().map(|_| {
        let mut s = FaultStats::default();
        for o in &outputs {
            s.outages += o.stats.outages;
            s.recoveries += o.stats.recoveries;
            s.node_crashes += o.stats.node_crashes;
            s.units_refunded_by_outage += o.stats.units_refunded_by_outage;
            s.units_dropped += o.stats.units_dropped;
            s.units_jittered += o.stats.units_jittered;
            s.units_griefed += o.stats.units_griefed;
            s.retries += o.stats.retries;
            s.blacklistings += o.stats.blacklistings;
            s.payments_failed += o.stats.payments_failed;
        }
        s
    });

    // Feature totals: exact integer sums over shard partials, converted to
    // display tokens exactly once.
    let routing_fees_paid = tokens(Amount::from_micros(
        outputs.iter().map(|o| o.routing_fees_micros).sum(),
    ));
    let rebal_transactions: u64 = outputs.iter().map(|o| o.rebal_transactions).sum();
    let rebalance = RebalanceStats {
        transactions: rebal_transactions as usize,
        moved_volume: tokens(Amount::from_micros(
            outputs.iter().map(|o| o.rebal_moved_micros).sum(),
        )),
        fees_paid: tokens(Amount::from_micros(
            outputs.iter().map(|o| o.rebal_fees_micros).sum(),
        )),
    };

    let policy = match config.policy {
        ShardPolicy::Direct => "epoch-bsp".to_string(),
        ShardPolicy::Queued => format!("epoch-bsp+queued-{:?}", config.queue_policy),
    };

    SimReport {
        scheme: config.scheme.name().to_string(),
        policy,
        attempted,
        completed: completed.len(),
        abandoned,
        pending_at_end,
        attempted_volume,
        delivered_volume,
        completed_volume,
        units_sent: outputs.iter().map(|o| o.units_sent).sum(),
        mean_completion_delay,
        final_mean_imbalance: final_ledger.mean_imbalance(),
        rebalance,
        routing_fees_paid,
        series,
        // One audited pass per epoch, plus the final check, plus one check
        // per applied rebalance — a property of the run, not of how many
        // shards audited their own copy.
        audit_checks: if config.audit {
            clock.end_epoch + 1 + rebal_transactions
        } else {
            0
        },
        audit_violations,
        completion_delay_percentiles: tel.delay_percentiles("sim.completion_delay"),
        telemetry: tel.summarize(network_series),
        faults: fault_stats,
        shards: Some(observability),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::PaymentId;

    fn line3(cap: i64) -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(cap))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(cap))
            .unwrap();
        g
    }

    fn tx(id: u64, src: u32, dst: u32, amount: i64, arrival: f64) -> Transaction {
        Transaction {
            id: PaymentId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            amount: Amount::from_whole(amount),
            arrival,
        }
    }

    #[test]
    fn single_payment_completes() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let mut cfg = ShardedConfig::new(10.0);
        cfg.audit = true;
        let p = Partition::single(&g);
        let report = run_sharded(&g, &txs, &p, &cfg);
        assert_eq!(report.attempted, 1);
        assert_eq!(report.completed, 1, "report: {report:?}");
        assert_eq!(report.units_sent, 3, "30 tokens at MTU 10 = 3 units");
        assert!((report.success_volume() - 1.0).abs() < 1e-9);
        assert!(report.audit_violations.is_empty(), "{report:?}");
        assert!(report.audit_checks > 0);
    }

    #[test]
    fn insufficient_capacity_fails_cleanly() {
        let g = line3(5);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let cfg = ShardedConfig::new(3.0);
        let p = Partition::single(&g);
        let report = run_sharded(&g, &txs, &p, &cfg);
        assert_eq!(report.completed, 0);
        // Deadline (5s) is past end (3s): payment still pending at end.
        assert_eq!(report.pending_at_end + report.abandoned, 1);
    }

    #[test]
    fn two_shards_match_one_shard_exactly() {
        let g = line3(100);
        let txs = vec![
            tx(0, 0, 2, 30, 0.1),
            tx(1, 2, 0, 20, 0.2),
            tx(2, 0, 1, 10, 0.3),
        ];
        let mut cfg = ShardedConfig::new(10.0);
        cfg.audit = true;
        let r1 = run_sharded(&g, &txs, &Partition::single(&g), &cfg);
        let r2 = run_sharded(&g, &txs, &Partition::build(&g, 2, 7), &cfg);
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    #[test]
    fn foreign_slot_mutation_is_refused_and_recorded() {
        let g = line3(100);
        let partition = Partition::build(&g, 2, 0);
        // Find a channel NOT owned by shard 0.
        let foreign = g
            .channels()
            .iter()
            .find(|ch| partition.channel_owner(ch.id) != 0)
            .map(|ch| ch.id);
        let Some(foreign) = foreign else {
            // Tiny graph collapsed to one owner; nothing to test.
            return;
        };
        let cfg = ShardedConfig::new(1.0);
        let mut ctx = ShardCtx {
            shard: 0,
            network: &g,
            partition: &partition,
            cfg: &cfg,
            clock: Clockwork {
                end_epoch: 1,
                delta_epochs: 1,
                poll_epochs: 1,
                deadline_epochs: 1,
                sample_epochs: u64::MAX,
            },
            scheme: cfg.scheme.build(),
            ledger: Ledger::new(&g),
            audit: None,
            faults: None,
            plan_events: Vec::new(),
            plan_cursor: 0,
            snapshot: vec![[0, 0]; g.num_channels()],
            dirty: Vec::new(),
            pending_msgs: BTreeMap::new(),
            staged: vec![Vec::new(), Vec::new()],
            payments: Vec::new(),
            pending: Vec::new(),
            arrivals: Vec::new(),
            arrival_cursor: 0,
            trace: Vec::new(),
            tel_on: false,
            units_sent: 0,
            series: Vec::new(),
            samples: Vec::new(),
            violations: Vec::new(),
            stats: ShardStats::default(),
            counters: ShardCounters::default(),
            arrived_count: 0,
            completed_count: 0,
            attempted_micros: 0,
            delivered_micros: 0,
            queues: BTreeMap::new(),
            routing_fees_micros: 0,
            rebalance_pending: vec![false; g.num_channels()],
            rebalance_applies: Vec::new(),
            rebal_transactions: 0,
            rebal_moved_micros: 0,
            rebal_fees_micros: 0,
        };
        assert!(!ctx.own(foreign, 1, "test-mutation"));
        assert_eq!(ctx.violations.len(), 1);
        assert!(matches!(
            ctx.violations[0].kind,
            AuditViolationKind::ForeignSlotMutation { .. }
        ));
        // Owned channels pass the guard without recording anything.
        let owned = g
            .channels()
            .iter()
            .find(|ch| partition.channel_owner(ch.id) == 0)
            .map(|ch| ch.id)
            .unwrap();
        assert!(ctx.own(owned, 1, "test-mutation"));
        assert_eq!(ctx.violations.len(), 1);
    }

    #[test]
    fn deadline_abandons_unroutable_payment() {
        // No path from 0 to 2 once the only route lacks capacity.
        let g = line3(1);
        let txs = vec![tx(0, 0, 2, 50, 0.1)];
        let mut cfg = ShardedConfig::new(20.0);
        cfg.deadline = 2.0;
        let report = run_sharded(&g, &txs, &Partition::single(&g), &cfg);
        assert_eq!(report.abandoned, 1);
        assert_eq!(report.pending_at_end, 0);
    }
}
