//! On-chain rebalancing inside the discrete-event simulation.
//!
//! The paper analyzes on-chain rebalancing only in the fluid model
//! (§5.2.3); this module brings it into the packet-level simulator as the
//! §7 extension: routers periodically inspect their channels and, when the
//! balance split is skewed past a threshold, submit an on-chain transaction
//! that moves funds from the rich side back to the poor side. The
//! transaction pays a miner fee (burned from the channel's capital) and
//! confirms only after a blockchain delay — both reasons the paper gives
//! for why routing should avoid needing it.

use serde::{Deserialize, Serialize};
use spider_core::Amount;

/// When and how routers rebalance channels on chain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RebalancePolicy {
    /// How often channels are inspected (seconds).
    pub check_interval: f64,
    /// Trigger when `|balance_a − balance_b| / capacity` exceeds this.
    pub imbalance_threshold: f64,
    /// Fraction of the imbalance corrected per on-chain transaction
    /// (1.0 restores a perfect 50/50 split).
    pub correction_fraction: f64,
    /// Flat miner fee per on-chain transaction, burned from the channel.
    pub fee: Amount,
    /// Blockchain confirmation delay before the moved funds are usable
    /// (seconds) — orders of magnitude above the payment delay Δ.
    pub confirmation_delay: f64,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            check_interval: 5.0,
            imbalance_threshold: 0.8,
            correction_fraction: 1.0,
            fee: Amount::from_whole(1),
            confirmation_delay: 60.0,
        }
    }
}

impl RebalancePolicy {
    /// A policy tuned for experiments: aggressive threshold, fast chain.
    pub fn aggressive() -> Self {
        RebalancePolicy {
            check_interval: 1.0,
            imbalance_threshold: 0.5,
            correction_fraction: 1.0,
            fee: Amount::from_whole(1),
            confirmation_delay: 10.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on nonsensical values (used by the engine at startup).
    pub fn validate(&self) {
        assert!(self.check_interval > 0.0, "check_interval must be positive");
        assert!(
            (0.0..=1.0).contains(&self.imbalance_threshold),
            "imbalance_threshold must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.correction_fraction),
            "correction_fraction must be in [0, 1]"
        );
        assert!(!self.fee.is_negative(), "fee cannot be negative");
        assert!(
            self.confirmation_delay >= 0.0,
            "confirmation_delay cannot be negative"
        );
    }

    /// Given a channel's current sides, decides how much to move from the
    /// richer side to the poorer side (before fees), or `None` if the
    /// channel is within tolerance.
    pub fn correction(&self, balance_a: Amount, balance_b: Amount) -> Option<Amount> {
        let capacity = balance_a + balance_b;
        if !capacity.is_positive() {
            return None;
        }
        let skew = (balance_a - balance_b).abs();
        if skew.ratio_of(capacity) <= self.imbalance_threshold {
            return None;
        }
        // Moving half the absolute difference equalizes the sides.
        let move_amount = (skew / 2).scale(self.correction_fraction);
        // Not worth a transaction that the fee would consume.
        if move_amount <= self.fee {
            return None;
        }
        Some(move_amount)
    }
}

/// Aggregate rebalancing activity over a run (reported in [`crate::SimReport`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RebalanceStats {
    /// On-chain transactions submitted.
    pub transactions: usize,
    /// Total value moved between channel sides (tokens).
    pub moved_volume: f64,
    /// Total miner fees burned (tokens).
    pub fees_paid: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_correction_when_balanced() {
        let p = RebalancePolicy::default();
        assert_eq!(
            p.correction(Amount::from_whole(50), Amount::from_whole(50)),
            None
        );
        // 70/30 split = 0.4 skew, below the 0.8 threshold.
        assert_eq!(
            p.correction(Amount::from_whole(70), Amount::from_whole(30)),
            None
        );
    }

    #[test]
    fn corrects_heavy_skew() {
        let p = RebalancePolicy::default();
        // 95/5 split: skew 0.9 > 0.8 -> move (90/2) = 45.
        let m = p
            .correction(Amount::from_whole(95), Amount::from_whole(5))
            .unwrap();
        assert_eq!(m, Amount::from_whole(45));
        // Symmetric.
        let m2 = p
            .correction(Amount::from_whole(5), Amount::from_whole(95))
            .unwrap();
        assert_eq!(m2, m);
    }

    #[test]
    fn partial_correction_fraction() {
        let p = RebalancePolicy {
            correction_fraction: 0.5,
            ..RebalancePolicy::default()
        };
        let m = p
            .correction(Amount::from_whole(95), Amount::from_whole(5))
            .unwrap();
        assert_eq!(m, Amount::from_tokens(22.5));
    }

    #[test]
    fn skips_dust_corrections() {
        let p = RebalancePolicy {
            fee: Amount::from_whole(10),
            ..Default::default()
        };
        // Moving 4.5 would cost a 10-token fee: skip.
        assert_eq!(p.correction(Amount::from_whole(9), Amount::ZERO), None);
    }

    #[test]
    fn empty_channel_is_ignored() {
        let p = RebalancePolicy::default();
        assert_eq!(p.correction(Amount::ZERO, Amount::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "imbalance_threshold")]
    fn validate_rejects_bad_threshold() {
        RebalancePolicy {
            imbalance_threshold: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
