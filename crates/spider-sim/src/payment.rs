//! Per-payment simulation state.

use spider_core::{Amount, NodeId, PaymentId};

/// Lifecycle of a payment in the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaymentStatus {
    /// Still being (or waiting to be) transmitted.
    Pending,
    /// Fully delivered before its deadline.
    Completed,
    /// Given up: atomic routing failed, the scheme declared it unroutable,
    /// or the deadline passed. Partially delivered funds stay delivered.
    Abandoned,
}

/// Mutable state the engine tracks for each payment.
#[derive(Clone, Debug)]
pub struct PaymentState {
    /// The payment id from the input trace.
    pub id: PaymentId,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Total payment value.
    pub amount: Amount,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Absolute deadline (seconds).
    pub deadline: f64,
    /// Value already settled at the receiver.
    pub delivered: Amount,
    /// Value locked in flight.
    pub inflight: Amount,
    /// Current lifecycle state.
    pub status: PaymentStatus,
    /// Completion time, once completed.
    pub completed_at: Option<f64>,
}

impl PaymentState {
    /// Value not yet sent (neither delivered nor in flight).
    pub fn remaining(&self) -> Amount {
        self.amount - self.delivered - self.inflight
    }

    /// `true` once every token has been settled.
    pub fn fully_delivered(&self) -> bool {
        self.delivered >= self.amount
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> PaymentState {
        PaymentState {
            id: PaymentId(1),
            src: NodeId(0),
            dst: NodeId(1),
            amount: Amount::from_whole(10),
            arrival: 0.0,
            deadline: 5.0,
            delivered: Amount::ZERO,
            inflight: Amount::ZERO,
            status: PaymentStatus::Pending,
            completed_at: None,
        }
    }

    #[test]
    fn remaining_accounts_for_inflight() {
        let mut p = state();
        assert_eq!(p.remaining(), Amount::from_whole(10));
        p.inflight = Amount::from_whole(4);
        p.delivered = Amount::from_whole(2);
        assert_eq!(p.remaining(), Amount::from_whole(4));
        assert!(!p.fully_delivered());
        p.delivered = Amount::from_whole(10);
        assert!(p.fully_delivered());
    }
}
