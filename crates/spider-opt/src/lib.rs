//! Optimization substrates for the Spider payment channel network.
//!
//! Everything the paper's routing analysis needs, implemented from scratch:
//!
//! - [`simplex`] — a dense two-phase simplex LP solver,
//! - [`maxflow`] — Edmonds–Karp maximum flow with path decomposition (the
//!   max-flow routing baseline),
//! - [`mincostflow`] — successive-shortest-path min-cost flow,
//! - [`circulation`] — exact maximum-circulation / DAG decomposition of
//!   payment graphs (Proposition 1),
//! - [`fluid`] — the fluid-model routing LPs of §5.2 (eqs. (1)–(18)),
//! - [`primal_dual`] — the decentralized primal-dual algorithm of §5.3
//!   (eqs. (19)–(24)),
//! - [`utility`] — proportionally fair routing via Frank–Wolfe (the
//!   objective the paper flags as future work).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod circulation;
pub mod fluid;
pub mod maxflow;
pub mod mincostflow;
pub mod primal_dual;
pub mod simplex;
pub mod utility;

pub use circulation::{decompose, peel_cycles, route_on_spanning_tree, Decomposition};
pub use fluid::{enumerate_demand_paths, enumerate_paths, FluidProblem, FluidSolution};
pub use maxflow::{balance_limited_flow, ChannelFlow, FlowNetwork};
pub use mincostflow::{FlowCost, MinCostFlow};
pub use primal_dual::{project_capped_simplex, PrimalDualConfig, PrimalDualSolution, Utility};
pub use simplex::{LinearProgram, LpOutcome, LpSolution, Relation};
pub use utility::{log_utility, proportional_fair, FairSolution, FairnessConfig};
