//! The paper's decentralized primal-dual routing algorithm (§5.3,
//! eqs. (19)–(24)).
//!
//! Each payment channel maintains a capacity price `λ` and per-direction
//! imbalance prices `μ`; each source/destination pair adjusts the rate it
//! sends on each of its candidate paths against the total path price
//! `z_p = Σ (λ + μ_fwd − μ_rev)`. With on-chain rebalancing enabled, each
//! channel direction additionally adapts its rebalancing rate `b` against
//! the rebalancing cost `γ`.
//!
//! For sufficiently small step sizes the iterates converge to the optimum of
//! the fluid LPs in [`crate::fluid`]; the unit tests cross-check against the
//! exact simplex solution.

use spider_core::{ChannelId, DemandMatrix, Direction, Network, NodeId, Path};
use spider_telemetry::{Telemetry, TraceEvent};
use std::collections::BTreeMap;

/// Objective maximized by the primal-dual dynamics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Utility {
    /// Total throughput `Σ x_p` (the paper's eqs. (6)–(11)).
    #[default]
    Throughput,
    /// Proportional fairness `Σ log(f_ij + ε)` (Kelly-style; the objective
    /// the paper proposes in §6.2 to avoid starving commodities). The
    /// primal gradient for a path of pair `(i,j)` becomes `1/(f_ij + ε)`.
    ProportionalFairness {
        /// Smoothing floor inside the logarithm.
        epsilon: f64,
    },
}

/// Step sizes and termination settings for the primal-dual iteration.
#[derive(Clone, Copy, Debug)]
pub struct PrimalDualConfig {
    /// Primal step size `α` for path rates (eq. 21).
    pub alpha: f64,
    /// Step size `β` for rebalancing rates (eq. 22).
    pub beta: f64,
    /// Dual step size `η` for capacity prices (eq. 23).
    pub eta: f64,
    /// Dual step size `κ` for imbalance prices (eq. 24).
    pub kappa: f64,
    /// On-chain rebalancing cost `γ`; `None` pins `b ≡ 0` (the balanced
    /// special case noted at the end of §5.3).
    pub gamma: Option<f64>,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Stop early when the max absolute rate change over a sweep falls
    /// below this threshold.
    pub tolerance: f64,
    /// Objective to maximize.
    pub utility: Utility,
}

impl Default for PrimalDualConfig {
    fn default() -> Self {
        PrimalDualConfig {
            alpha: 0.01,
            beta: 0.01,
            eta: 0.01,
            kappa: 0.01,
            gamma: None,
            max_iters: 50_000,
            tolerance: 1e-7,
            utility: Utility::Throughput,
        }
    }
}

/// Result of running the primal-dual algorithm.
#[derive(Clone, Debug)]
pub struct PrimalDualSolution {
    /// Final rate on each candidate path (aligned with the input slice).
    pub path_flows: Vec<f64>,
    /// Final rebalancing rates per channel direction (nonzero entries).
    pub rebalancing: Vec<(ChannelId, Direction, f64)>,
    /// Total delivered rate `Σ x_p`.
    pub throughput: f64,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the tolerance criterion was met before `max_iters`.
    pub converged: bool,
    /// Throughput trajectory sampled every `max(1, max_iters/512)` sweeps
    /// (for convergence plots).
    pub history: Vec<f64>,
    /// Convergence residuals aligned with `history`: the smallest max-rate
    /// change (`max_delta`) seen in any sweep up to each sample point. The
    /// raw per-sweep residual oscillates with the primal-dual orbit and does
    /// not decay pointwise; the running best is non-increasing by
    /// construction and measures how close the orbit has come to the saddle.
    pub residuals: Vec<f64>,
}

/// Runs the primal-dual algorithm of §5.3 on the given fluid instance.
///
/// `paths` is the candidate path set (any pair with demand and no path gets
/// zero rate); `delta` is the confirmation latency `Δ`.
pub fn solve(
    network: &Network,
    demand: &DemandMatrix,
    paths: &[Path],
    delta: f64,
    config: &PrimalDualConfig,
) -> PrimalDualSolution {
    solve_traced(
        network,
        demand,
        paths,
        delta,
        config,
        &Telemetry::disabled(),
    )
}

/// [`solve`] with telemetry: emits a [`TraceEvent::SolverSample`] per
/// sampling window (objective, windowed-minimum residual, mean capacity
/// price λ) and records sweep/sample counters into the registry.
pub fn solve_traced(
    network: &Network,
    demand: &DemandMatrix,
    paths: &[Path],
    delta: f64,
    config: &PrimalDualConfig,
    telemetry: &Telemetry,
) -> PrimalDualSolution {
    assert!(delta > 0.0, "Δ must be positive");
    let num_paths = paths.len();
    let num_channels = network.num_channels();

    // Group candidate paths per demand-bearing pair.
    let mut pair_paths: BTreeMap<(NodeId, NodeId), Vec<usize>> = BTreeMap::new();
    for (i, p) in paths.iter().enumerate() {
        let key = (p.source(), p.dest());
        if demand.rate(key.0, key.1) > 0.0 {
            pair_paths.entry(key).or_default().push(i);
        }
    }

    // Per-channel per-direction path membership.
    let slot = |d: Direction| match d {
        Direction::AtoB => 0usize,
        Direction::BtoA => 1usize,
    };
    let mut members: Vec<[Vec<usize>; 2]> = vec![[Vec::new(), Vec::new()]; num_channels];
    for ids in pair_paths.values() {
        for &i in ids {
            for &(c, d) in paths[i].hops() {
                members[c.index()][slot(d)].push(i);
            }
        }
    }

    let cap_rate: Vec<f64> = network
        .channels()
        .iter()
        .map(|ch| ch.capacity().as_tokens() / delta)
        .collect();

    let mut x = vec![0.0f64; num_paths];
    let mut lambda = vec![0.0f64; num_channels];
    let mut mu = vec![[0.0f64; 2]; num_channels];
    let mut b = vec![[0.0f64; 2]; num_channels];
    let mut flow = vec![[0.0f64; 2]; num_channels];

    let sample_every = (config.max_iters / 512).max(1);
    let mut history = Vec::new();
    let mut residuals = Vec::new();
    let mut best_residual = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;

    // Primal-dual gradient dynamics can orbit the saddle point instead of
    // landing on it; the time-average of the iterates converges. Average
    // over the second half of the run and report that unless the last
    // iterate itself converged.
    let warmup = config.max_iters / 2;
    let mut x_sum = vec![0.0f64; num_paths];
    let mut b_sum = vec![[0.0f64; 2]; num_channels];
    let mut avg_count = 0usize;

    let mut scratch: Vec<f64> = Vec::new();
    for t in 0..config.max_iters {
        iterations = t + 1;

        // Primal step for path rates (eq. 21) with projection onto
        // {x ≥ 0, Σ_pair x ≤ d}. The gradient of the utility w.r.t. x_p is
        // 1 for throughput and 1/(f_pair + ε) for proportional fairness.
        let mut max_delta = 0.0f64;
        for (&(s, d), ids) in &pair_paths {
            let grad = match config.utility {
                Utility::Throughput => 1.0,
                Utility::ProportionalFairness { epsilon } => {
                    let f_pair: f64 = ids.iter().map(|&i| x[i]).sum();
                    1.0 / (f_pair + epsilon)
                }
            };
            scratch.clear();
            for &i in ids {
                let mut z_p = 0.0;
                for &(c, dir) in paths[i].hops() {
                    let e = c.index();
                    z_p += lambda[e] + mu[e][slot(dir)] - mu[e][1 - slot(dir)];
                }
                scratch.push(x[i] + config.alpha * (grad - z_p));
            }
            project_capped_simplex(&mut scratch, demand.rate(s, d));
            for (k, &i) in ids.iter().enumerate() {
                max_delta = max_delta.max((scratch[k] - x[i]).abs());
                x[i] = scratch[k];
            }
        }

        // Rebalancing step (eq. 22).
        if let Some(gamma) = config.gamma {
            for e in 0..num_channels {
                for s in 0..2 {
                    let nb = (b[e][s] + config.beta * (mu[e][s] - gamma)).max(0.0);
                    max_delta = max_delta.max((nb - b[e][s]).abs());
                    b[e][s] = nb;
                }
            }
        }

        // Aggregate per-direction flows.
        for e in 0..num_channels {
            for s in 0..2 {
                flow[e][s] = members[e][s].iter().map(|&i| x[i]).sum();
            }
        }

        // Dual step (eqs. 23, 24).
        for e in 0..num_channels {
            let total = flow[e][0] + flow[e][1];
            lambda[e] = (lambda[e] + config.eta * (total - cap_rate[e])).max(0.0);
            for s in 0..2 {
                mu[e][s] =
                    (mu[e][s] + config.kappa * (flow[e][s] - flow[e][1 - s] - b[e][s])).max(0.0);
            }
        }

        best_residual = best_residual.min(max_delta);
        if t % sample_every == 0 {
            let objective: f64 = x.iter().sum();
            history.push(objective);
            residuals.push(best_residual);
            telemetry.emit(|| TraceEvent::SolverSample {
                iter: (t + 1) as u64,
                objective,
                residual: best_residual,
                mean_price: if num_channels > 0 {
                    lambda.iter().sum::<f64>() / num_channels as f64
                } else {
                    0.0
                },
            });
        }
        if t >= warmup {
            for (s, &v) in x_sum.iter_mut().zip(&x) {
                *s += v;
            }
            for (s, v) in b_sum.iter_mut().zip(&b) {
                s[0] += v[0];
                s[1] += v[1];
            }
            avg_count += 1;
        }
        if max_delta < config.tolerance {
            converged = true;
            break;
        }
    }

    // Pick the reported iterate: exact fixed point if reached, else the
    // tail time-average.
    let (x_out, b_out) = if !converged && avg_count > 0 {
        let inv = 1.0 / avg_count as f64;
        (
            x_sum.iter().map(|&v| v * inv).collect::<Vec<_>>(),
            b_sum
                .iter()
                .map(|v| [v[0] * inv, v[1] * inv])
                .collect::<Vec<_>>(),
        )
    } else {
        (x, b)
    };

    let throughput = x_out.iter().sum();
    let mut rebalancing = Vec::new();
    for ch in network.channels() {
        for (s, dir) in [(0usize, Direction::AtoB), (1usize, Direction::BtoA)] {
            if b_out[ch.id.index()][s] > 1e-9 {
                rebalancing.push((ch.id, dir, b_out[ch.id.index()][s]));
            }
        }
    }
    telemetry.counter_add("opt.primal_dual.sweeps", iterations as u64);
    telemetry.counter_add("opt.primal_dual.samples", history.len() as u64);
    PrimalDualSolution {
        path_flows: x_out,
        rebalancing,
        throughput,
        iterations,
        converged,
        history,
        residuals,
    }
}

/// Euclidean projection of `v` onto `{x : x ≥ 0, Σ x ≤ cap}` in place.
///
/// If clipping negatives already satisfies the sum constraint, that is the
/// projection; otherwise the result is the standard simplex projection
/// `x_i = max(v_i − τ, 0)` with `τ` chosen so the coordinates sum to `cap`.
pub fn project_capped_simplex(v: &mut [f64], cap: f64) {
    assert!(cap >= 0.0, "cap must be non-negative");
    let clipped_sum: f64 = v.iter().map(|&a| a.max(0.0)).sum();
    if clipped_sum <= cap {
        for a in v.iter_mut() {
            *a = a.max(0.0);
        }
        return;
    }
    // Find τ via the sorted-threshold method.
    let mut sorted: Vec<f64> = v.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut cumulative = 0.0;
    let mut tau = 0.0;
    for (k, &val) in sorted.iter().enumerate() {
        cumulative += val;
        let candidate = (cumulative - cap) / (k + 1) as f64;
        if k + 1 == sorted.len() || sorted[k + 1] <= candidate {
            tau = candidate;
            break;
        }
    }
    for a in v.iter_mut() {
        *a = (*a - tau).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::{enumerate_demand_paths, FluidProblem};
    use proptest::prelude::*;
    use spider_core::Amount;

    fn fig4_network() -> Network {
        let mut g = Network::new(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)] {
            g.add_channel(NodeId(a), NodeId(b), Amount::from_tokens(1e6))
                .unwrap();
        }
        g
    }

    #[test]
    fn projection_noop_inside_set() {
        let mut v = vec![0.2, 0.3];
        project_capped_simplex(&mut v, 1.0);
        assert_eq!(v, vec![0.2, 0.3]);
    }

    #[test]
    fn projection_clips_negatives() {
        let mut v = vec![-0.5, 0.4];
        project_capped_simplex(&mut v, 1.0);
        assert_eq!(v, vec![0.0, 0.4]);
    }

    #[test]
    fn projection_onto_simplex_boundary() {
        let mut v = vec![1.0, 1.0];
        project_capped_simplex(&mut v, 1.0);
        assert!((v[0] - 0.5).abs() < 1e-12);
        assert!((v[1] - 0.5).abs() < 1e-12);
        let mut v = vec![2.0, 0.0];
        project_capped_simplex(&mut v, 1.0);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert_eq!(v[1], 0.0);
    }

    proptest! {
        #[test]
        fn prop_projection_feasible_and_idempotent(
            v in proptest::collection::vec(-10.0f64..10.0, 1..8),
            cap in 0.0f64..5.0,
        ) {
            let mut p = v.clone();
            project_capped_simplex(&mut p, cap);
            let sum: f64 = p.iter().sum();
            prop_assert!(sum <= cap + 1e-9);
            prop_assert!(p.iter().all(|&a| a >= 0.0));
            // Idempotent.
            let mut q = p.clone();
            project_capped_simplex(&mut q, cap);
            for (a, b) in p.iter().zip(&q) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_projection_is_closest_among_candidates(
            v in proptest::collection::vec(-5.0f64..5.0, 2..6),
            cap in 0.1f64..4.0,
        ) {
            let mut p = v.clone();
            project_capped_simplex(&mut p, cap);
            let dist_p: f64 = v.iter().zip(&p).map(|(a, b)| (a - b).powi(2)).sum();
            // Compare against a few feasible candidates: zero and uniform.
            let zero = vec![0.0; v.len()];
            let uniform = vec![cap / v.len() as f64; v.len()];
            for cand in [zero, uniform] {
                let dist_c: f64 =
                    v.iter().zip(&cand).map(|(a, b)| (a - b).powi(2)).sum();
                prop_assert!(dist_p <= dist_c + 1e-9);
            }
        }
    }

    #[test]
    fn converges_to_fig4_optimum() {
        let g = fig4_network();
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let exact = FluidProblem::new(&g, &demand, &paths, 1.0).max_balanced_throughput();
        let config = PrimalDualConfig {
            alpha: 0.02,
            eta: 0.02,
            kappa: 0.02,
            max_iters: 40_000,
            ..Default::default()
        };
        let sol = solve(&g, &demand, &paths, 1.0, &config);
        assert!(
            (sol.throughput - exact.throughput).abs() < 0.15,
            "primal-dual {} vs simplex {}",
            sol.throughput,
            exact.throughput
        );
    }

    #[test]
    fn respects_capacity_price() {
        // Single channel, bidirectional demand 100 each way, cap rate 2.
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(4))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(1), 100.0);
        demand.set(NodeId(1), NodeId(0), 100.0);
        let paths = enumerate_demand_paths(&g, &demand, 2);
        let sol = solve(&g, &demand, &paths, 2.0, &PrimalDualConfig::default());
        assert!(
            (sol.throughput - 2.0).abs() < 0.1,
            "throughput {} should approach capacity 2",
            sol.throughput
        );
    }

    #[test]
    fn dag_demand_suppressed_without_rebalancing() {
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(1000))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(1), 5.0);
        let paths = enumerate_demand_paths(&g, &demand, 2);
        let sol = solve(&g, &demand, &paths, 1.0, &PrimalDualConfig::default());
        assert!(
            sol.throughput < 0.2,
            "one-way flow must be priced out, got {}",
            sol.throughput
        );
    }

    #[test]
    fn cheap_rebalancing_unlocks_dag_demand() {
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(1000))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(1), 5.0);
        let paths = enumerate_demand_paths(&g, &demand, 2);
        let config = PrimalDualConfig {
            gamma: Some(0.05),
            max_iters: 60_000,
            ..Default::default()
        };
        let sol = solve(&g, &demand, &paths, 1.0, &config);
        assert!(
            sol.throughput > 4.0,
            "cheap rebalancing should unlock the DAG demand, got {}",
            sol.throughput
        );
        let b_total: f64 = sol.rebalancing.iter().map(|&(_, _, v)| v).sum();
        assert!(
            b_total > 3.5,
            "rebalancing rate should approach 5, got {b_total}"
        );
    }

    #[test]
    fn residuals_shrink_over_trace_tail_on_fig4() {
        let g = fig4_network();
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let config = PrimalDualConfig {
            alpha: 0.02,
            eta: 0.02,
            kappa: 0.02,
            max_iters: 40_000,
            ..Default::default()
        };
        let sol = solve(&g, &demand, &paths, 1.0, &config);
        assert_eq!(sol.residuals.len(), sol.history.len());
        assert!(sol.residuals.iter().all(|r| r.is_finite() && *r >= 0.0));
        // The residual trace must be non-increasing over its tail (it is a
        // running best, so any rise is a defect) ...
        let tail = &sol.residuals[sol.residuals.len() * 3 / 4..];
        assert!(tail.len() >= 8, "tail too short: {}", tail.len());
        for w in tail.windows(2) {
            assert!(
                w[1] <= w[0],
                "residual rose along the tail: {} -> {}",
                w[0],
                w[1]
            );
        }
        // ... and must show real convergence: the best residual at the end
        // sits far below the first sample's.
        assert!(
            *sol.residuals.last().unwrap() <= sol.residuals[0] / 10.0,
            "residual barely improved: {} -> {}",
            sol.residuals[0],
            sol.residuals.last().unwrap()
        );
    }

    #[test]
    fn traced_solve_emits_solver_samples() {
        let g = fig4_network();
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 4);
        let config = PrimalDualConfig {
            max_iters: 2_000,
            ..Default::default()
        };
        let telemetry = Telemetry::enabled();
        let sol = solve_traced(&g, &demand, &paths, 1.0, &config, &telemetry);
        let events = telemetry.events();
        let samples: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SolverSample { .. }))
            .collect();
        assert_eq!(samples.len(), sol.history.len());
        if let TraceEvent::SolverSample {
            iter,
            objective,
            residual,
            ..
        } = samples[0]
        {
            assert_eq!(*iter, 1);
            assert_eq!(*objective, sol.history[0]);
            assert_eq!(*residual, sol.residuals[0]);
        }
        let reg = telemetry.registry().unwrap();
        assert_eq!(
            reg.counter("opt.primal_dual.sweeps", ""),
            sol.iterations as u64
        );
        assert_eq!(
            reg.counter("opt.primal_dual.samples", ""),
            sol.history.len() as u64
        );
        // The untraced entry point must produce identical numbers.
        let plain = solve(&g, &demand, &paths, 1.0, &config);
        assert_eq!(plain.history, sol.history);
        assert_eq!(plain.residuals, sol.residuals);
    }

    #[test]
    fn history_is_recorded() {
        let g = fig4_network();
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 4);
        let config = PrimalDualConfig {
            max_iters: 1000,
            ..Default::default()
        };
        let sol = solve(&g, &demand, &paths, 1.0, &config);
        assert!(!sol.history.is_empty());
        assert!(sol.iterations <= 1000);
    }

    #[test]
    fn fairness_utility_splits_shared_bottleneck() {
        // Line 0-1-2: pairs (0<->2) and (0<->1) share channel 0-1 with
        // capacity rate 20. Throughput doesn't care who wins; proportional
        // fairness must split ~5/5/5/5.
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(20))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(20))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(2), 100.0);
        demand.set(NodeId(2), NodeId(0), 100.0);
        demand.set(NodeId(0), NodeId(1), 100.0);
        demand.set(NodeId(1), NodeId(0), 100.0);
        let paths = enumerate_demand_paths(&g, &demand, 3);
        let config = PrimalDualConfig {
            utility: Utility::ProportionalFairness { epsilon: 1e-3 },
            alpha: 0.02,
            eta: 0.02,
            kappa: 0.02,
            max_iters: 40_000,
            ..Default::default()
        };
        let sol = solve(&g, &demand, &paths, 1.0, &config);
        // Per-pair rates.
        let mut rates: std::collections::BTreeMap<(NodeId, NodeId), f64> = Default::default();
        for (i, p) in paths.iter().enumerate() {
            *rates.entry((p.source(), p.dest())).or_default() += sol.path_flows[i];
        }
        for (&(s, d), &r) in &rates {
            assert!(
                (r - 5.0).abs() < 1.0,
                "pair {s}->{d} should get ~5 under fairness, got {r}"
            );
        }
    }

    #[test]
    fn zero_demand_yields_zero() {
        let g = fig4_network();
        let demand = DemandMatrix::new();
        let paths: Vec<Path> = Vec::new();
        let sol = solve(&g, &demand, &paths, 1.0, &PrimalDualConfig::default());
        assert_eq!(sol.throughput, 0.0);
        assert!(sol.converged);
    }
}
