//! The paper's fluid-model routing LPs (§5.2).
//!
//! Transactions between pairs are modeled as continuous flows `x_p` over a
//! candidate path set; channels constrain both total rate (capacity `c_e/Δ`)
//! and direction balance. Three variants are provided:
//!
//! - [`FluidProblem::max_balanced_throughput`] — eqs. (1)–(5): perfect
//!   balance, no on-chain rebalancing;
//! - [`FluidProblem::with_rebalancing`] — eqs. (6)–(11): rebalancing allowed
//!   at cost `γ` per unit rate;
//! - [`FluidProblem::with_rebalancing_budget`] — eqs. (12)–(18): total
//!   rebalancing rate capped at `B`, yielding the concave frontier `t(B)`.
//!
//! All three are solved exactly with the dense simplex of
//! [`crate::simplex`].

use crate::simplex::{LinearProgram, LpOutcome, Relation};
use spider_core::{ChannelId, DemandMatrix, Direction, Network, NodeId, Path};
use std::collections::BTreeMap;

/// A fluid-model routing instance: network, demand, candidate paths, and the
/// average confirmation latency `Δ` (seconds).
#[derive(Clone, Debug)]
pub struct FluidProblem<'a> {
    network: &'a Network,
    demand: &'a DemandMatrix,
    paths: &'a [Path],
    delta: f64,
    /// Path indices grouped per (src, dst) pair, demand-bearing pairs only.
    pair_paths: BTreeMap<(NodeId, NodeId), Vec<usize>>,
}

/// Solution of a fluid-model LP.
#[derive(Clone, Debug)]
pub struct FluidSolution {
    /// Flow on each candidate path, aligned with the problem's path slice.
    pub path_flows: Vec<f64>,
    /// On-chain rebalancing rates `b` per channel and direction (empty for
    /// the balanced variant).
    pub rebalancing: Vec<(ChannelId, Direction, f64)>,
    /// Total delivered rate `Σ x_p` (tokens/second).
    pub throughput: f64,
    /// LP objective value (equals `throughput` unless rebalancing is priced).
    pub objective: f64,
}

impl FluidSolution {
    /// Total on-chain rebalancing rate `B = Σ b`.
    pub fn total_rebalancing(&self) -> f64 {
        self.rebalancing.iter().map(|&(_, _, b)| b).sum()
    }

    /// Throughput as a fraction of the given total demand.
    pub fn demand_fraction(&self, demand: &DemandMatrix) -> f64 {
        let total = demand.total();
        if total <= 0.0 {
            0.0
        } else {
            self.throughput / total
        }
    }
}

impl<'a> FluidProblem<'a> {
    /// Builds a fluid problem. Paths whose endpoints carry no demand are
    /// ignored; demand pairs with no candidate path simply get zero rate.
    ///
    /// # Panics
    /// Panics if `delta <= 0`.
    pub fn new(
        network: &'a Network,
        demand: &'a DemandMatrix,
        paths: &'a [Path],
        delta: f64,
    ) -> Self {
        assert!(delta > 0.0, "Δ must be positive");
        let mut pair_paths: BTreeMap<(NodeId, NodeId), Vec<usize>> = BTreeMap::new();
        for (i, p) in paths.iter().enumerate() {
            let key = (p.source(), p.dest());
            if demand.rate(key.0, key.1) > 0.0 {
                pair_paths.entry(key).or_default().push(i);
            }
        }
        FluidProblem {
            network,
            demand,
            paths,
            delta,
            pair_paths,
        }
    }

    /// The candidate path slice this problem was built over.
    pub fn paths(&self) -> &[Path] {
        self.paths
    }

    /// eqs. (1)–(5): maximum throughput under perfect balance.
    pub fn max_balanced_throughput(&self) -> FluidSolution {
        self.solve_objective(RebalanceMode::None, None)
    }

    /// Maximizes an arbitrary linear objective `Σ w_p x_p` over the
    /// balanced-routing polytope (used by the Frank–Wolfe fairness solver
    /// in [`crate::utility`]).
    pub fn max_weighted_flow(&self, weights: &[f64]) -> FluidSolution {
        assert_eq!(weights.len(), self.paths.len(), "one weight per path");
        self.solve_objective(RebalanceMode::None, Some(weights))
    }

    /// eqs. (6)–(11): throughput minus `γ ·` total rebalancing rate.
    pub fn with_rebalancing(&self, gamma: f64) -> FluidSolution {
        assert!(gamma >= 0.0, "γ must be non-negative");
        self.solve_objective(RebalanceMode::Priced { gamma }, None)
    }

    /// eqs. (12)–(18): maximum throughput with total rebalancing `≤ budget`.
    pub fn with_rebalancing_budget(&self, budget: f64) -> FluidSolution {
        assert!(budget >= 0.0, "B must be non-negative");
        self.solve_objective(RebalanceMode::Budget { budget }, None)
    }

    /// Samples the frontier `t(B)` at the given budgets.
    pub fn throughput_curve(&self, budgets: &[f64]) -> Vec<(f64, f64)> {
        budgets
            .iter()
            .map(|&b| (b, self.with_rebalancing_budget(b).throughput))
            .collect()
    }

    fn solve_objective(&self, mode: RebalanceMode, weights: Option<&[f64]>) -> FluidSolution {
        let num_paths = self.paths.len();
        let with_b = !matches!(mode, RebalanceMode::None);
        // Variable layout: x_p for p in 0..num_paths, then (if rebalancing)
        // b_{e,dir} with 2 per channel: index num_paths + 2*e + {0:AtoB, 1:BtoA}.
        let num_channels = self.network.num_channels();
        let num_vars = num_paths + if with_b { 2 * num_channels } else { 0 };
        let b_var = |c: ChannelId, d: Direction| {
            num_paths
                + 2 * c.index()
                + match d {
                    Direction::AtoB => 0,
                    Direction::BtoA => 1,
                }
        };

        let mut lp = LinearProgram::new(num_vars);

        // Objective: unit weight per path unless custom weights are given.
        let mut obj: Vec<(usize, f64)> = Vec::with_capacity(num_vars);
        for ids in self.pair_paths.values() {
            for &i in ids {
                obj.push((i, weights.map_or(1.0, |w| w[i])));
            }
        }
        if let RebalanceMode::Priced { gamma } = mode {
            for c in 0..num_channels {
                obj.push((num_paths + 2 * c, -gamma));
                obj.push((num_paths + 2 * c + 1, -gamma));
            }
        }
        lp.set_objective(&obj);

        // Demand constraints: Σ_{p ∈ P_ij} x_p ≤ d_ij.
        for (&(s, d), ids) in &self.pair_paths {
            let coeffs: Vec<(usize, f64)> = ids.iter().map(|&i| (i, 1.0)).collect();
            lp.add_constraint(&coeffs, Relation::Le, self.demand.rate(s, d));
        }

        // Per-channel usage in each direction.
        let mut usage: Vec<[Vec<usize>; 2]> = vec![[Vec::new(), Vec::new()]; num_channels];
        for ids in self.pair_paths.values() {
            for &i in ids {
                for &(c, dir) in self.paths[i].hops() {
                    let slot = match dir {
                        Direction::AtoB => 0,
                        Direction::BtoA => 1,
                    };
                    usage[c.index()][slot].push(i);
                }
            }
        }

        for ch in self.network.channels() {
            let e = ch.id.index();
            let cap = ch.capacity().as_tokens() / self.delta;
            // Capacity (3)/(8)/(14): total rate in both directions ≤ c/Δ.
            let mut cap_coeffs: Vec<(usize, f64)> = Vec::new();
            for &i in usage[e][0].iter().chain(usage[e][1].iter()) {
                cap_coeffs.push((i, 1.0));
            }
            if !cap_coeffs.is_empty() {
                lp.add_constraint(&cap_coeffs, Relation::Le, cap);
            }
            // Balance (4)/(9)/(15), one per direction:
            //   flow(dir) - flow(rev) ≤ b_{e,dir}   (b ≡ 0 when not rebalancing)
            for (slot, dir) in [(0usize, Direction::AtoB), (1usize, Direction::BtoA)] {
                let rev = 1 - slot;
                if usage[e][slot].is_empty() && usage[e][rev].is_empty() && !with_b {
                    continue;
                }
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for &i in &usage[e][slot] {
                    coeffs.push((i, 1.0));
                }
                for &i in &usage[e][rev] {
                    coeffs.push((i, -1.0));
                }
                if with_b {
                    coeffs.push((b_var(ch.id, dir), -1.0));
                }
                if !coeffs.is_empty() {
                    lp.add_constraint(&coeffs, Relation::Le, 0.0);
                }
            }
        }

        // Budget (16): Σ b ≤ B.
        if let RebalanceMode::Budget { budget } = mode {
            let coeffs: Vec<(usize, f64)> = (num_paths..num_vars).map(|j| (j, 1.0)).collect();
            lp.add_constraint(&coeffs, Relation::Le, budget);
        }

        let sol = match lp.solve() {
            LpOutcome::Optimal(s) => s,
            // x = 0 (and b = 0) is always feasible, and throughput is capped
            // by total demand, so neither case is reachable.
            other => unreachable!("fluid LP must be solvable: {other:?}"),
        };

        let path_flows: Vec<f64> = sol.x[..num_paths].to_vec();
        let throughput = path_flows.iter().sum();
        let mut rebalancing = Vec::new();
        if with_b {
            for ch in self.network.channels() {
                for dir in [Direction::AtoB, Direction::BtoA] {
                    let b = sol.x[b_var(ch.id, dir)];
                    if b > 1e-9 {
                        rebalancing.push((ch.id, dir, b));
                    }
                }
            }
        }
        FluidSolution {
            path_flows,
            rebalancing,
            throughput,
            objective: sol.objective,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum RebalanceMode {
    None,
    Priced { gamma: f64 },
    Budget { budget: f64 },
}

/// Enumerates all simple paths between `src` and `dst` with at most
/// `max_hops` hops — a convenient exhaustive path set for small fluid
/// instances (the Fig. 4 example, unit tests).
pub fn enumerate_paths(network: &Network, src: NodeId, dst: NodeId, max_hops: usize) -> Vec<Path> {
    let mut out = Vec::new();
    let mut stack = vec![src];
    let mut on_stack = vec![false; network.num_nodes()];
    on_stack[src.index()] = true;
    fn dfs(
        network: &Network,
        dst: NodeId,
        max_hops: usize,
        stack: &mut Vec<NodeId>,
        on_stack: &mut [bool],
        out: &mut Vec<Path>,
    ) {
        let u = *stack.last().unwrap();
        if u == dst {
            out.push(Path::new(network, stack.clone()).expect("DFS builds valid simple paths"));
            return;
        }
        if stack.len() > max_hops {
            return;
        }
        for &(v, _) in network.neighbors(u) {
            if !on_stack[v.index()] {
                on_stack[v.index()] = true;
                stack.push(v);
                dfs(network, dst, max_hops, stack, on_stack, out);
                stack.pop();
                on_stack[v.index()] = false;
            }
        }
    }
    dfs(network, dst, max_hops, &mut stack, &mut on_stack, &mut out);
    out
}

/// Builds the exhaustive candidate path set (simple paths up to `max_hops`)
/// for every demand-bearing pair.
pub fn enumerate_demand_paths(
    network: &Network,
    demand: &DemandMatrix,
    max_hops: usize,
) -> Vec<Path> {
    let mut all = Vec::new();
    for (s, d, _) in demand.entries() {
        all.extend(enumerate_paths(network, s, d, max_hops));
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::Amount;

    /// The Fig. 4 topology (0-based): ring 0-1-2-3-4-0 plus chord 1-3.
    fn fig4_network(capacity: f64) -> Network {
        let mut g = Network::new(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)] {
            g.add_channel(NodeId(a), NodeId(b), Amount::from_tokens(capacity))
                .unwrap();
        }
        g
    }

    #[test]
    fn fig4_optimal_balanced_throughput_is_8() {
        let g = fig4_network(1e6);
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let prob = FluidProblem::new(&g, &demand, &paths, 1.0);
        let sol = prob.max_balanced_throughput();
        assert!(
            (sol.throughput - 8.0).abs() < 1e-6,
            "expected ν(C*) = 8, got {}",
            sol.throughput
        );
        assert!(sol.rebalancing.is_empty());
    }

    #[test]
    fn fig4_shortest_path_only_achieves_5() {
        // Restricting each pair to its shortest path reproduces Fig. 4b's
        // throughput of 5 units.
        let g = fig4_network(1e6);
        let demand = DemandMatrix::fig4_example();
        let mut paths = Vec::new();
        for (s, d, _) in demand.entries() {
            let mut all = enumerate_paths(&g, s, d, 5);
            all.sort_by_key(|p| p.len());
            let min = all[0].len();
            // Keep only shortest paths; where several tie, keep them all
            // (the LP may still pick at most the balanced mix).
            paths.extend(all.into_iter().filter(|p| p.len() == min));
        }
        let prob = FluidProblem::new(&g, &demand, &paths, 1.0);
        let sol = prob.max_balanced_throughput();
        assert!(
            (sol.throughput - 5.0).abs() < 1e-6,
            "expected 5 units on shortest paths, got {}",
            sol.throughput
        );
    }

    #[test]
    fn throughput_capped_by_capacity() {
        // Two nodes, one channel of capacity 4 with Δ = 2 -> rate cap 2.
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(4))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(1), 100.0);
        demand.set(NodeId(1), NodeId(0), 100.0);
        let paths = enumerate_demand_paths(&g, &demand, 3);
        let prob = FluidProblem::new(&g, &demand, &paths, 2.0);
        let sol = prob.max_balanced_throughput();
        assert!(
            (sol.throughput - 2.0).abs() < 1e-6,
            "got {}",
            sol.throughput
        );
    }

    #[test]
    fn pure_dag_demand_gets_zero_without_rebalancing() {
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(1), 5.0);
        let paths = enumerate_demand_paths(&g, &demand, 3);
        let prob = FluidProblem::new(&g, &demand, &paths, 1.0);
        let sol = prob.max_balanced_throughput();
        assert!(sol.throughput.abs() < 1e-9);
    }

    #[test]
    fn rebalancing_unlocks_dag_demand() {
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(1), 5.0);
        let paths = enumerate_demand_paths(&g, &demand, 3);
        let prob = FluidProblem::new(&g, &demand, &paths, 1.0);
        // Cheap rebalancing (γ < 1): worth buying throughput.
        let sol = prob.with_rebalancing(0.1);
        assert!((sol.throughput - 5.0).abs() < 1e-6);
        assert!((sol.total_rebalancing() - 5.0).abs() < 1e-6);
        assert!((sol.objective - (5.0 - 0.5)).abs() < 1e-6);
        // Expensive rebalancing (γ > 1): not worth it.
        let sol = prob.with_rebalancing(2.0);
        assert!(sol.throughput.abs() < 1e-6);
        assert!(sol.total_rebalancing().abs() < 1e-6);
    }

    #[test]
    fn budget_frontier_is_monotone_and_concave() {
        let g = fig4_network(1e6);
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let prob = FluidProblem::new(&g, &demand, &paths, 1.0);
        let budgets = [0.0, 1.0, 2.0, 3.0, 4.0, 8.0];
        let curve = prob.throughput_curve(&budgets);
        // t(0) = ν(C*) = 8; the full demand (12) is reachable with enough B.
        assert!((curve[0].1 - 8.0).abs() < 1e-6);
        assert!((curve.last().unwrap().1 - 12.0).abs() < 1e-6);
        // Monotone non-decreasing.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
        // Concave: marginal gains shrink along equal budget steps 0..4.
        let gains: Vec<f64> = (1..5).map(|i| curve[i].1 - curve[i - 1].1).collect();
        for w in gains.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "gains must shrink: {gains:?}");
        }
    }

    #[test]
    fn budget_variant_with_zero_budget_matches_balanced() {
        let g = fig4_network(1e6);
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let prob = FluidProblem::new(&g, &demand, &paths, 1.0);
        let balanced = prob.max_balanced_throughput();
        let zero_budget = prob.with_rebalancing_budget(0.0);
        assert!((balanced.throughput - zero_budget.throughput).abs() < 1e-6);
    }

    #[test]
    fn demand_fraction_reporting() {
        let g = fig4_network(1e6);
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let sol = FluidProblem::new(&g, &demand, &paths, 1.0).max_balanced_throughput();
        assert!((sol.demand_fraction(&demand) - 8.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    fn enumerate_paths_respects_hop_limit() {
        let g = fig4_network(10.0);
        let short = enumerate_paths(&g, NodeId(0), NodeId(2), 2);
        assert!(short.iter().all(|p| p.len() <= 2));
        let all = enumerate_paths(&g, NodeId(0), NodeId(2), 5);
        assert!(all.len() > short.len());
        for p in &all {
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.dest(), NodeId(2));
        }
    }

    #[test]
    fn path_flows_respect_demand_caps() {
        let g = fig4_network(1e6);
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let prob = FluidProblem::new(&g, &demand, &paths, 1.0);
        let sol = prob.max_balanced_throughput();
        let mut per_pair: std::collections::BTreeMap<(NodeId, NodeId), f64> = Default::default();
        for (i, p) in paths.iter().enumerate() {
            *per_pair.entry((p.source(), p.dest())).or_default() += sol.path_flows[i];
        }
        for (&(s, d), &f) in &per_pair {
            assert!(f <= demand.rate(s, d) + 1e-6, "{s}->{d} over demand");
        }
    }
}
