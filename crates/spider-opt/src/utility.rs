//! Utility-maximizing (proportionally fair) routing.
//!
//! The paper notes (§5.3, §6.2) that the throughput objective starves some
//! commodities — "the LP assigns zero flows to all paths for certain
//! commodities" — and proposes exploring objectives like proportional
//! fairness [15, 16]. This module maximizes
//!
//! `Σ_{(i,j)} w_ij · log(f_ij + ε)`    with `f_ij = Σ_{p ∈ P_ij} x_p`
//!
//! over the same balanced-routing polytope as eqs. (1)–(5), using the
//! Frank–Wolfe (conditional gradient) method: each iteration linearizes the
//! utility and calls the exact simplex on the resulting weighted-flow LP,
//! then steps toward the vertex with the standard `2/(k+2)` schedule. The
//! objective is smooth and concave on a compact polytope, so the iterates
//! converge to the optimum.

use crate::fluid::{FluidProblem, FluidSolution};
use spider_core::NodeId;
use std::collections::BTreeMap;

/// Settings for the Frank–Wolfe fairness solver.
#[derive(Clone, Copy, Debug)]
pub struct FairnessConfig {
    /// Number of Frank–Wolfe iterations.
    pub iterations: usize,
    /// Smoothing floor ε inside the logarithm (keeps gradients finite for
    /// unroutable pairs).
    pub epsilon: f64,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig {
            iterations: 60,
            epsilon: 1e-3,
        }
    }
}

/// A proportionally fair allocation.
#[derive(Clone, Debug)]
pub struct FairSolution {
    /// Flow on each candidate path (aligned with the problem's path slice).
    pub path_flows: Vec<f64>,
    /// Delivered rate per (src, dst) pair.
    pub pair_rates: BTreeMap<(NodeId, NodeId), f64>,
    /// Total delivered rate.
    pub throughput: f64,
    /// Achieved utility `Σ log(f + ε)`.
    pub utility: f64,
}

/// Computes `Σ log(f_ij + ε)` for a path-flow vector.
pub fn log_utility(problem: &FluidProblem<'_>, flows: &[f64], epsilon: f64) -> f64 {
    pair_rates(problem, flows)
        .values()
        .map(|&f| (f + epsilon).ln())
        .sum()
}

fn pair_rates(problem: &FluidProblem<'_>, flows: &[f64]) -> BTreeMap<(NodeId, NodeId), f64> {
    let mut rates: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for (i, p) in problem.paths().iter().enumerate() {
        if flows[i] != 0.0 {
            *rates.entry((p.source(), p.dest())).or_default() += flows[i];
        }
    }
    // Make sure every demand-bearing pair with candidate paths appears,
    // even at rate zero, so the utility counts its starvation.
    for p in problem.paths() {
        rates.entry((p.source(), p.dest())).or_insert(0.0);
    }
    rates
}

/// Maximizes proportional fairness over the balanced-routing polytope.
pub fn proportional_fair(problem: &FluidProblem<'_>, config: &FairnessConfig) -> FairSolution {
    assert!(config.iterations >= 1);
    assert!(config.epsilon > 0.0);
    let n = problem.paths().len();
    if n == 0 {
        return FairSolution {
            path_flows: Vec::new(),
            pair_rates: BTreeMap::new(),
            throughput: 0.0,
            utility: 0.0,
        };
    }

    // Feasible start: half the max-throughput solution (strictly interior in
    // the throughput direction, avoids a log cliff at zero).
    let mut x: Vec<f64> = problem
        .max_balanced_throughput()
        .path_flows
        .iter()
        .map(|f| 0.5 * f)
        .collect();

    for k in 0..config.iterations {
        // Gradient of Σ log(f + ε): each path of pair (i,j) gets 1/(f_ij + ε).
        let rates = pair_rates(problem, &x);
        let weights: Vec<f64> = problem
            .paths()
            .iter()
            .map(|p| {
                let f = rates.get(&(p.source(), p.dest())).copied().unwrap_or(0.0);
                1.0 / (f + config.epsilon)
            })
            .collect();
        // Linear maximization over the polytope (exact simplex vertex).
        let vertex: FluidSolution = problem.max_weighted_flow(&weights);
        let gamma = 2.0 / (k as f64 + 2.0);
        for (xi, si) in x.iter_mut().zip(&vertex.path_flows) {
            *xi = (1.0 - gamma) * *xi + gamma * si;
        }
    }

    let rates = pair_rates(problem, &x);
    let throughput = x.iter().sum();
    let utility = rates.values().map(|&f| (f + config.epsilon).ln()).sum();
    FairSolution {
        path_flows: x,
        pair_rates: rates,
        throughput,
        utility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::enumerate_demand_paths;
    use spider_core::{Amount, DemandMatrix, Network};

    /// Line 0-1-2: pair A (0<->2) needs both channels, pair B (0<->1) only
    /// the first. Channel 0-1's capacity is the shared bottleneck.
    fn contended_instance() -> (Network, DemandMatrix) {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(20))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(20))
            .unwrap();
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(2), 100.0);
        d.set(NodeId(2), NodeId(0), 100.0);
        d.set(NodeId(0), NodeId(1), 100.0);
        d.set(NodeId(1), NodeId(0), 100.0);
        (g, d)
    }

    #[test]
    fn fairness_splits_the_bottleneck() {
        let (g, d) = contended_instance();
        let paths = enumerate_demand_paths(&g, &d, 3);
        let problem = FluidProblem::new(&g, &d, &paths, 1.0);
        let fair = proportional_fair(&problem, &FairnessConfig::default());
        // Bottleneck: channel 0-1 carries all four pair flows; capacity 20.
        // Proportional fairness equalizes the four rates at ~5 each.
        for (&(s, t), &rate) in &fair.pair_rates {
            assert!(
                (rate - 5.0).abs() < 0.8,
                "pair {s}->{t} should get ~5, got {rate}"
            );
        }
        assert!((fair.throughput - 20.0).abs() < 1.0);
    }

    #[test]
    fn fairness_utility_beats_unbalanced_allocations() {
        let (g, d) = contended_instance();
        let paths = enumerate_demand_paths(&g, &d, 3);
        let problem = FluidProblem::new(&g, &d, &paths, 1.0);
        let config = FairnessConfig::default();
        let fair = proportional_fair(&problem, &config);
        // Compare against the raw max-throughput vertex (which may starve a
        // pair) and the half-scale start.
        let vertex = problem.max_balanced_throughput();
        let u_fair = fair.utility;
        let u_vertex = log_utility(&problem, &vertex.path_flows, config.epsilon);
        assert!(
            u_fair >= u_vertex - 1e-6,
            "fair utility {u_fair} must be at least the vertex's {u_vertex}"
        );
    }

    #[test]
    fn fairness_respects_demand_caps() {
        // Tiny demand on one pair: fairness cannot exceed it.
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(100))
            .unwrap();
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 2.0);
        d.set(NodeId(1), NodeId(0), 2.0);
        let paths = enumerate_demand_paths(&g, &d, 2);
        let problem = FluidProblem::new(&g, &d, &paths, 1.0);
        let fair = proportional_fair(&problem, &FairnessConfig::default());
        for &rate in fair.pair_rates.values() {
            assert!(rate <= 2.0 + 1e-6);
        }
    }

    #[test]
    fn empty_problem_is_fine() {
        let g = Network::new(2);
        let d = DemandMatrix::new();
        let paths = Vec::new();
        let problem = FluidProblem::new(&g, &d, &paths, 1.0);
        let fair = proportional_fair(&problem, &FairnessConfig::default());
        assert_eq!(fair.throughput, 0.0);
    }

    #[test]
    fn flows_stay_feasible() {
        let (g, d) = contended_instance();
        let paths = enumerate_demand_paths(&g, &d, 3);
        let problem = FluidProblem::new(&g, &d, &paths, 1.0);
        let fair = proportional_fair(&problem, &FairnessConfig::default());
        // Feasibility spot-checks: non-negative flows, per-pair ≤ demand,
        // channel 0-1 total ≤ capacity/Δ = 20 (+ FW rounding slack).
        assert!(fair.path_flows.iter().all(|&f| f >= -1e-9));
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        let mut on_c01 = 0.0;
        for (i, p) in paths.iter().enumerate() {
            if p.uses_channel(c01) {
                on_c01 += fair.path_flows[i];
            }
        }
        assert!(on_c01 <= 20.0 + 1e-6, "channel 0-1 overloaded: {on_c01}");
    }
}
