//! Minimum-cost flow via successive shortest paths with Johnson potentials.
//!
//! This is the exact substrate behind the maximum-circulation computation
//! (Proposition 1): the circulation problem reduces to a min-cost flow on a
//! residual network with unit costs (see [`crate::circulation`]).
//!
//! Capacities and costs are `i64`; negative edge costs are supported (the
//! initial potentials are computed with Bellman–Ford), but negative cycles
//! are not.

/// A directed edge with capacity and per-unit cost.
#[derive(Clone, Debug)]
struct McfEdge {
    to: usize,
    cap: i64,
    flow: i64,
    cost: i64,
}

/// A min-cost flow network over dense node indices.
#[derive(Clone, Debug, Default)]
pub struct MinCostFlow {
    edges: Vec<McfEdge>,
    adj: Vec<Vec<usize>>,
}

/// Result of a min-cost flow computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowCost {
    /// Units of flow actually pushed.
    pub flow: i64,
    /// Total cost of that flow.
    pub cost: i64,
}

impl MinCostFlow {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds edge `u -> v` with `cap` capacity and `cost` per unit; returns
    /// its index. Creates the paired reverse edge (zero cap, negated cost).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> usize {
        assert!(cap >= 0, "negative capacity");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        let id = self.edges.len();
        self.edges.push(McfEdge {
            to: v,
            cap,
            flow: 0,
            cost,
        });
        self.edges.push(McfEdge {
            to: u,
            cap: 0,
            flow: 0,
            cost: -cost,
        });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        id
    }

    /// Net flow on edge `id` (as returned by [`add_edge`](Self::add_edge)).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.edges[id].flow
    }

    fn residual(&self, e: usize) -> i64 {
        self.edges[e].cap - self.edges[e].flow
    }

    /// Pushes up to `limit` units from `s` to `t` at minimum cost.
    ///
    /// Augments along successive shortest (reduced-cost) paths, so the
    /// result is optimal for the amount of flow it achieves. Stops early
    /// when `t` becomes unreachable.
    ///
    /// # Panics
    /// Panics if the graph contains a negative-cost cycle reachable from `s`.
    pub fn min_cost_flow(&mut self, s: usize, t: usize, limit: i64) -> FlowCost {
        assert!(s < self.adj.len() && t < self.adj.len());
        let n = self.adj.len();
        if s == t || limit <= 0 {
            return FlowCost { flow: 0, cost: 0 };
        }

        // Initial potentials via Bellman-Ford (handles negative edge costs).
        const INF: i64 = i64::MAX / 4;
        let mut potential = vec![INF; n];
        potential[s] = 0;
        for round in 0..n {
            let mut changed = false;
            for u in 0..n {
                if potential[u] == INF {
                    continue;
                }
                for &e in &self.adj[u] {
                    if self.residual(e) > 0 {
                        let v = self.edges[e].to;
                        let nd = potential[u] + self.edges[e].cost;
                        if nd < potential[v] {
                            potential[v] = nd;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            assert!(round < n - 1 || !changed, "negative cycle detected");
        }

        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        let mut dist = vec![INF; n];
        let mut parent = vec![usize::MAX; n];

        while total_flow < limit {
            // Dijkstra on reduced costs.
            dist.fill(INF);
            parent.fill(usize::MAX);
            dist[s] = 0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(std::cmp::Reverse((0i64, s)));
            while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &e in &self.adj[u] {
                    if self.residual(e) > 0 && potential[u] < INF {
                        let v = self.edges[e].to;
                        if potential[v] >= INF {
                            // Unreached in BF init: only possible if v was
                            // unreachable then; give it a workable potential.
                            potential[v] = potential[u];
                        }
                        let reduced = self.edges[e].cost + potential[u] - potential[v];
                        debug_assert!(reduced >= 0, "negative reduced cost {reduced}");
                        let nd = d + reduced;
                        if nd < dist[v] {
                            dist[v] = nd;
                            parent[v] = e;
                            heap.push(std::cmp::Reverse((nd, v)));
                        }
                    }
                }
            }
            if dist[t] >= INF {
                break;
            }
            for v in 0..n {
                if dist[v] < INF {
                    potential[v] += dist[v];
                }
            }
            // Bottleneck and augmentation.
            let mut bottleneck = limit - total_flow;
            let mut v = t;
            while v != s {
                let e = parent[v];
                bottleneck = bottleneck.min(self.residual(e));
                v = self.edges[e ^ 1].to;
            }
            let mut v = t;
            while v != s {
                let e = parent[v];
                self.edges[e].flow += bottleneck;
                self.edges[e ^ 1].flow -= bottleneck;
                total_cost += bottleneck * self.edges[e].cost;
                v = self.edges[e ^ 1].to;
            }
            total_flow += bottleneck;
        }
        FlowCost {
            flow: total_flow,
            cost: total_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 10, 3);
        let r = g.min_cost_flow(0, 1, i64::MAX);
        assert_eq!(r, FlowCost { flow: 10, cost: 30 });
    }

    #[test]
    fn prefers_cheaper_path() {
        // Two parallel 2-hop paths: cost 1+1 vs 5+5, caps 4 each; want 6 units.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 4, 1);
        g.add_edge(1, 3, 4, 1);
        g.add_edge(0, 2, 4, 5);
        g.add_edge(2, 3, 4, 5);
        let r = g.min_cost_flow(0, 3, 6);
        assert_eq!(r.flow, 6);
        assert_eq!(r.cost, 4 * 2 + 2 * 10);
    }

    #[test]
    fn respects_limit() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 100, 2);
        let r = g.min_cost_flow(0, 1, 7);
        assert_eq!(r, FlowCost { flow: 7, cost: 14 });
    }

    #[test]
    fn disconnected_target() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 5, 1);
        let r = g.min_cost_flow(0, 2, 10);
        assert_eq!(r.flow, 0);
    }

    #[test]
    fn negative_costs_without_cycles() {
        // 0 -> 1 cost -2, 1 -> 2 cost 1: total cost should be negative.
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 5, -2);
        g.add_edge(1, 2, 5, 1);
        let r = g.min_cost_flow(0, 2, i64::MAX);
        assert_eq!(r, FlowCost { flow: 5, cost: -5 });
    }

    #[test]
    fn optimality_with_rerouting() {
        // Cheap direct edge with small cap + expensive detour.
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 2, 2, 1); // cheap, cap 2
        g.add_edge(0, 1, 10, 2);
        g.add_edge(1, 2, 10, 2);
        let r = g.min_cost_flow(0, 2, 5);
        assert_eq!(r.flow, 5);
        assert_eq!(r.cost, 2 + 3 * 4);
    }

    #[test]
    fn flow_on_reports_edge_flows() {
        let mut g = MinCostFlow::new(3);
        let e1 = g.add_edge(0, 1, 4, 1);
        let e2 = g.add_edge(1, 2, 4, 1);
        g.min_cost_flow(0, 2, 3);
        assert_eq!(g.flow_on(e1), 3);
        assert_eq!(g.flow_on(e2), 3);
    }

    #[test]
    fn partial_flow_is_min_cost_for_that_value() {
        // Pushing 1 unit should use the cheapest path only.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 10);
        g.add_edge(1, 3, 1, 10);
        g.add_edge(0, 2, 1, 1);
        g.add_edge(2, 3, 1, 1);
        let r = g.min_cost_flow(0, 3, 1);
        assert_eq!(r, FlowCost { flow: 1, cost: 2 });
    }
}
