//! Integer-capacity maximum flow (Edmonds–Karp) with path decomposition.
//!
//! The max-flow routing baseline (§3, §6.1 of the paper) computes, per
//! transaction, a maximum flow between sender and receiver on the graph of
//! current channel balances and — if the flow covers the transaction value —
//! routes the transaction along the decomposed flow paths.
//!
//! Capacities are `i64` (micro-units of currency), so augmentation is exact.

use spider_core::{Amount, BalanceView, Network, NodeId};

/// A directed edge in a [`FlowNetwork`].
#[derive(Clone, Debug)]
struct FlowEdge {
    to: usize,
    cap: i64,
    flow: i64,
}

/// A directed flow network over dense node indices `0..n`.
///
/// Every [`add_edge`](FlowNetwork::add_edge) also creates the paired reverse
/// edge with zero capacity (standard residual-graph representation).
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    edges: Vec<FlowEdge>,
    adj: Vec<Vec<usize>>,
    augmentations: u64,
}

impl FlowNetwork {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            augmentations: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Augmenting paths pushed by all [`max_flow`](FlowNetwork::max_flow)
    /// calls on this network so far — the paper's per-transaction overhead
    /// argument (§3), made measurable.
    pub fn augmentations(&self) -> u64 {
        self.augmentations
    }

    /// Adds a directed edge `u -> v` with the given capacity and returns its
    /// index. A zero-capacity reverse edge is created automatically.
    ///
    /// # Panics
    /// Panics if `cap < 0` or an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64) -> usize {
        assert!(cap >= 0, "negative capacity");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        let id = self.edges.len();
        self.edges.push(FlowEdge {
            to: v,
            cap,
            flow: 0,
        });
        self.edges.push(FlowEdge {
            to: u,
            cap: 0,
            flow: 0,
        });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        id
    }

    /// Net flow currently assigned to edge `id` (as returned by `add_edge`).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.edges[id].flow
    }

    /// Residual capacity of edge index `e` (including reverse edges).
    fn residual(&self, e: usize) -> i64 {
        self.edges[e].cap - self.edges[e].flow
    }

    /// Builds a flow network mirroring a payment channel network, with one
    /// directed edge per channel direction whose capacity is the spendable
    /// balance in that direction (read through `balances`).
    ///
    /// Node `i` of the flow network is `NodeId(i)`; the returned vector maps
    /// each channel to its `(a->b edge, b->a edge)` indices.
    pub fn from_channel_balances(
        network: &Network,
        balances: &dyn BalanceView,
    ) -> (FlowNetwork, Vec<(usize, usize)>) {
        let mut fnw = FlowNetwork::new(network.num_nodes());
        let mut map = Vec::with_capacity(network.num_channels());
        for ch in network.channels() {
            let ab = fnw.add_edge(
                ch.a.index(),
                ch.b.index(),
                balances.available(ch.id, ch.a).micros().max(0),
            );
            let ba = fnw.add_edge(
                ch.b.index(),
                ch.a.index(),
                balances.available(ch.id, ch.b).micros().max(0),
            );
            map.push((ab, ba));
        }
        (fnw, map)
    }

    /// Runs Edmonds–Karp from `s` to `t`, stopping early once `limit` units
    /// of flow have been pushed (`i64::MAX` for the true maximum). Returns
    /// the achieved flow value.
    pub fn max_flow(&mut self, s: usize, t: usize, limit: i64) -> i64 {
        assert!(s < self.adj.len() && t < self.adj.len());
        if s == t || limit <= 0 {
            return 0;
        }
        let n = self.adj.len();
        let mut total = 0i64;
        // parent[v] = edge index used to reach v in the BFS.
        let mut parent = vec![usize::MAX; n];
        while total < limit {
            parent.fill(usize::MAX);
            let mut queue = std::collections::VecDeque::from([s]);
            let mut reached = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.edges[e].to;
                    if v != s && parent[v] == usize::MAX && self.residual(e) > 0 {
                        parent[v] = e;
                        if v == t {
                            reached = true;
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !reached {
                break;
            }
            // Bottleneck along the augmenting path.
            let mut bottleneck = limit - total;
            let mut v = t;
            while v != s {
                let e = parent[v];
                bottleneck = bottleneck.min(self.residual(e));
                v = self.edges[e ^ 1].to;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let e = parent[v];
                self.edges[e].flow += bottleneck;
                self.edges[e ^ 1].flow -= bottleneck;
                v = self.edges[e ^ 1].to;
            }
            total += bottleneck;
            self.augmentations += 1;
        }
        total
    }

    /// Decomposes the current flow into `s -> t` paths.
    ///
    /// Returns `(node_path, value)` pairs whose values sum to the net flow
    /// out of `s`. Flow cycles (which carry no `s -> t` value) are cancelled
    /// and discarded.
    pub fn decompose_paths(&mut self, s: usize, t: usize) -> Vec<(Vec<usize>, i64)> {
        let mut paths = Vec::new();
        loop {
            // Walk greedily from s along positive-flow edges to t.
            let mut node = s;
            let mut trail_edges: Vec<usize> = Vec::new();
            let mut on_trail_at = vec![usize::MAX; self.adj.len()];
            on_trail_at[s] = 0;
            let mut found = false;
            loop {
                if node == t {
                    found = true;
                    break;
                }
                let next = self.adj[node]
                    .iter()
                    .copied()
                    .find(|&e| e % 2 == 0 && self.edges[e].flow > 0);
                let Some(e) = next else { break };
                let v = self.edges[e].to;
                if on_trail_at[v] != usize::MAX {
                    // Found a cycle: cancel it (it carries no s->t value).
                    let cut = on_trail_at[v];
                    let mut cyc_min = self.edges[e].flow;
                    for &ce in &trail_edges[cut..] {
                        cyc_min = cyc_min.min(self.edges[ce].flow);
                    }
                    self.edges[e].flow -= cyc_min;
                    self.edges[e ^ 1].flow += cyc_min;
                    for &ce in &trail_edges[cut..] {
                        self.edges[ce].flow -= cyc_min;
                        self.edges[ce ^ 1].flow += cyc_min;
                    }
                    // Restart the walk from scratch.
                    trail_edges.clear();
                    on_trail_at.fill(usize::MAX);
                    on_trail_at[s] = 0;
                    node = s;
                    continue;
                }
                trail_edges.push(e);
                on_trail_at[v] = trail_edges.len();
                node = v;
            }
            if !found {
                break;
            }
            let Some(bottleneck) = trail_edges.iter().map(|&e| self.edges[e].flow).min() else {
                // Unreachable: `found` implies a non-empty trail.
                break;
            };
            let mut nodes = vec![s];
            for &e in &trail_edges {
                self.edges[e].flow -= bottleneck;
                self.edges[e ^ 1].flow += bottleneck;
                nodes.push(self.edges[e].to);
            }
            paths.push((nodes, bottleneck));
        }
        paths
    }
}

/// Result of a capped max-flow query on a payment channel network.
#[derive(Clone, Debug)]
pub struct ChannelFlow {
    /// Achieved flow value.
    pub value: Amount,
    /// Paths (as node sequences) with the amount routed on each.
    pub paths: Vec<(Vec<NodeId>, Amount)>,
    /// Augmenting paths the Edmonds–Karp search pushed to reach `value`.
    pub augmenting_paths: u64,
}

/// Computes a flow of value up to `limit` from `src` to `dst` over the
/// current channel balances, decomposed into node paths.
///
/// This is the paper's max-flow routing primitive: a distributed
/// Ford–Fulkerson stand-in, run centrally for the simulation.
pub fn balance_limited_flow(
    network: &Network,
    balances: &dyn BalanceView,
    src: NodeId,
    dst: NodeId,
    limit: Amount,
) -> ChannelFlow {
    let (mut fnw, _) = FlowNetwork::from_channel_balances(network, balances);
    let value = fnw.max_flow(src.index(), dst.index(), limit.micros());
    let paths = fnw
        .decompose_paths(src.index(), dst.index())
        .into_iter()
        .map(|(nodes, v)| {
            (
                nodes.into_iter().map(NodeId::from).collect::<Vec<_>>(),
                Amount::from_micros(v),
            )
        })
        .collect();
    ChannelFlow {
        value: Amount::from_micros(value),
        paths,
        augmenting_paths: fnw.augmentations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::Amount;

    #[test]
    fn single_edge_flow() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 10);
        assert_eq!(f.max_flow(0, 1, i64::MAX), 10);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two disjoint paths of caps 3 and 5, plus a cross edge.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 3);
        f.add_edge(0, 2, 5);
        f.add_edge(1, 3, 5);
        f.add_edge(2, 3, 3);
        f.add_edge(2, 1, 3);
        assert_eq!(f.max_flow(0, 3, i64::MAX), 8);
    }

    #[test]
    fn flow_respects_limit() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 100);
        assert_eq!(f.max_flow(0, 1, 30), 30);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 5);
        assert_eq!(f.max_flow(0, 2, i64::MAX), 0);
    }

    #[test]
    fn self_flow_is_zero() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 5);
        assert_eq!(f.max_flow(0, 0, i64::MAX), 0);
    }

    #[test]
    fn requires_reverse_residuals() {
        // The "cross" example where a naive greedy needs to undo flow:
        // 0->1 (1), 0->2 (1), 1->3 (1), 2->1... classic: max flow 2 only via
        // rerouting through the cross edge.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 1);
        f.add_edge(0, 2, 1);
        f.add_edge(1, 2, 1);
        f.add_edge(1, 3, 1);
        f.add_edge(2, 3, 1);
        assert_eq!(f.max_flow(0, 3, i64::MAX), 2);
    }

    #[test]
    fn decomposition_sums_to_flow_value() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 3);
        f.add_edge(0, 2, 5);
        f.add_edge(1, 3, 5);
        f.add_edge(2, 3, 3);
        f.add_edge(2, 1, 3);
        let value = f.max_flow(0, 3, i64::MAX);
        let paths = f.decompose_paths(0, 3);
        let total: i64 = paths.iter().map(|(_, v)| v).sum();
        assert_eq!(total, value);
        for (nodes, v) in &paths {
            assert_eq!(nodes.first(), Some(&0));
            assert_eq!(nodes.last(), Some(&3));
            assert!(*v > 0);
        }
    }

    #[test]
    fn from_channel_balances_uses_directional_balances() {
        let mut g = Network::new(3);
        g.add_channel_with_balances(
            NodeId(0),
            NodeId(1),
            Amount::from_whole(7),
            Amount::from_whole(1),
        )
        .unwrap();
        g.add_channel_with_balances(
            NodeId(1),
            NodeId(2),
            Amount::from_whole(4),
            Amount::from_whole(0),
        )
        .unwrap();
        let flow = balance_limited_flow(&g, &g, NodeId(0), NodeId(2), Amount::from_whole(100));
        // Bottleneck is the 4 spendable by node 1 toward node 2.
        assert_eq!(flow.value, Amount::from_whole(4));
        assert_eq!(flow.paths.len(), 1);
        assert_eq!(flow.paths[0].0, vec![NodeId(0), NodeId(1), NodeId(2)]);
        // Reverse direction is limited by node 2's zero balance.
        let rev = balance_limited_flow(&g, &g, NodeId(2), NodeId(0), Amount::from_whole(100));
        assert_eq!(rev.value, Amount::ZERO);
    }

    #[test]
    fn capped_flow_decomposition() {
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        let flow = balance_limited_flow(&g, &g, NodeId(0), NodeId(1), Amount::from_whole(2));
        assert_eq!(flow.value, Amount::from_whole(2));
        assert_eq!(flow.paths[0].1, Amount::from_whole(2));
    }

    #[test]
    fn augmenting_paths_are_counted() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 3);
        f.add_edge(0, 2, 5);
        f.add_edge(1, 3, 5);
        f.add_edge(2, 3, 3);
        f.add_edge(2, 1, 3);
        assert_eq!(f.augmentations(), 0);
        f.max_flow(0, 3, i64::MAX);
        // Unit-capacity BFS augmentation needs at least one path per
        // decomposed route; exact count is deterministic, bounded by value.
        assert!(f.augmentations() >= 2 && f.augmentations() <= 8);

        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        let flow = balance_limited_flow(&g, &g, NodeId(0), NodeId(1), Amount::from_whole(2));
        assert_eq!(flow.augmenting_paths, 1);
        let dry = balance_limited_flow(&g, &g, NodeId(1), NodeId(0), Amount::ZERO);
        assert_eq!(dry.augmenting_paths, 0);
    }

    #[test]
    fn larger_grid_flow_value() {
        // 3x3 grid, unit capacities, corner to corner: max flow = 2.
        let idx = |r: usize, c: usize| r * 3 + c;
        let mut f = FlowNetwork::new(9);
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    f.add_edge(idx(r, c), idx(r, c + 1), 1);
                    f.add_edge(idx(r, c + 1), idx(r, c), 1);
                }
                if r + 1 < 3 {
                    f.add_edge(idx(r, c), idx(r + 1, c), 1);
                    f.add_edge(idx(r + 1, c), idx(r, c), 1);
                }
            }
        }
        assert_eq!(f.max_flow(0, 8, i64::MAX), 2);
    }
}
