//! Maximum circulation and DAG decomposition of payment graphs (§5.2.2).
//!
//! Proposition 1 of the paper: the maximum throughput achievable with
//! perfectly balanced routing equals `ν(C*)`, the value of a maximum
//! circulation contained in the payment graph `H`. This module computes
//! `C*` *exactly* by reduction to min-cost flow:
//!
//! 1. saturate every demand edge (`f = d`), creating node surpluses;
//! 2. cancel the cheapest units of flow needed to restore conservation —
//!    a min-cost flow over "cancellation arcs" (one per demand edge,
//!    reversed, unit cost);
//! 3. what survives is a maximum circulation; the cancelled part is the DAG
//!    component.
//!
//! Also provided: cycle peeling (to present a circulation as weighted cycles,
//! as in Fig. 5b) and spanning-tree routing of a circulation (the
//! constructive half of Proposition 1's proof).

use crate::mincostflow::MinCostFlow;
use spider_core::{Amount, DemandMatrix, Network, NodeId};
use std::collections::BTreeMap;

/// A payment graph split into its maximum circulation and DAG remainder.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The maximum circulation `C*` (a sub-demand that is perfectly balanced
    /// at every node).
    pub circulation: DemandMatrix,
    /// The acyclic remainder `H - C*`.
    pub dag: DemandMatrix,
    /// `ν(C*)`: total rate of the circulation.
    pub value: f64,
}

impl Decomposition {
    /// Fraction of total demand that is routable with perfect balance
    /// (`ν(C*) / ν(H)`); `0.0` for an empty demand.
    pub fn circulation_fraction(&self) -> f64 {
        let total = self.value + self.dag.total();
        if total <= 0.0 {
            0.0
        } else {
            self.value / total
        }
    }
}

/// Computes the maximum circulation contained in `demand` (exactly, at
/// micro-rate resolution) and the DAG remainder.
pub fn decompose(demand: &DemandMatrix) -> Decomposition {
    let participants = demand.participants();
    let index: BTreeMap<NodeId, usize> = participants
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();
    let k = participants.len();

    // Demand edges at micro resolution.
    let edges: Vec<(usize, usize, i64)> = demand
        .entries()
        .map(|(s, d, r)| (index[&s], index[&d], Amount::from_tokens(r).micros()))
        .filter(|&(_, _, w)| w > 0)
        .collect();

    if edges.is_empty() {
        return Decomposition {
            circulation: DemandMatrix::new(),
            dag: demand.clone(),
            value: 0.0,
        };
    }

    // Saturate everything; surplus[v] = inflow - outflow.
    let mut surplus = vec![0i64; k];
    for &(u, v, w) in &edges {
        surplus[u] -= w;
        surplus[v] += w;
    }

    // Min-cost correction flow over cancellation arcs.
    let s_node = k;
    let t_node = k + 1;
    let mut mcf = MinCostFlow::new(k + 2);
    let mut cancel_arc = Vec::with_capacity(edges.len());
    for &(u, v, w) in &edges {
        // Cancelling a unit of flow on demand edge (u, v) moves a unit of
        // "correction" from v back to u and costs one unit of circulation.
        cancel_arc.push(mcf.add_edge(v, u, w, 1));
    }
    let mut total_surplus = 0i64;
    for (v, &s) in surplus.iter().enumerate() {
        if s > 0 {
            mcf.add_edge(s_node, v, s, 0);
            total_surplus += s;
        } else if s < 0 {
            mcf.add_edge(v, t_node, -s, 0);
        }
    }

    let result = mcf.min_cost_flow(s_node, t_node, total_surplus);
    assert_eq!(
        result.flow, total_surplus,
        "correction flow must be feasible (full cancellation always is)"
    );

    // Surviving flow per demand edge.
    let mut circulation = DemandMatrix::new();
    let mut dag = DemandMatrix::new();
    let mut value_micros = 0i64;
    for (i, &(u, v, w)) in edges.iter().enumerate() {
        let cancelled = mcf.flow_on(cancel_arc[i]);
        let kept = w - cancelled;
        debug_assert!((0..=w).contains(&kept));
        let (src, dst) = (participants[u], participants[v]);
        if kept > 0 {
            circulation.set(src, dst, Amount::from_micros(kept).as_tokens());
            value_micros += kept;
        }
        if cancelled > 0 {
            dag.set(src, dst, Amount::from_micros(cancelled).as_tokens());
        }
    }

    Decomposition {
        circulation,
        dag,
        value: Amount::from_micros(value_micros).as_tokens(),
    }
}

/// Peels a circulation into weighted directed cycles (Fig. 5b's view).
///
/// Returns `(cycle_nodes, rate)` pairs; the cycle is given without repeating
/// the first node at the end. The rates of all cycles through an edge sum to
/// the edge's rate in the circulation.
///
/// # Panics
/// Panics if `circulation` is not a circulation (node imbalance beyond
/// micro-rate rounding).
pub fn peel_cycles(circulation: &DemandMatrix) -> Vec<(Vec<NodeId>, f64)> {
    assert!(
        circulation.is_circulation(1e-6),
        "peel_cycles requires a balanced demand matrix"
    );
    // Work on integer micro-rates for exact termination.
    let mut weight: BTreeMap<(NodeId, NodeId), i64> = circulation
        .entries()
        .map(|(s, d, r)| ((s, d), Amount::from_tokens(r).micros()))
        .filter(|&(_, w)| w > 0)
        .collect();

    // Rates quantized independently per entry can leave a sub-micro
    // imbalance at a node; residues up to this many micro-units per entry
    // are discarded rather than treated as corruption.
    const RESIDUE_MICROS: i64 = 4;

    let mut cycles = Vec::new();
    'peel: while let Some((&(start, _), _)) = weight.iter().next() {
        // Walk from `start`, always taking some positive out-edge, until a
        // node repeats; balance guarantees we never dead-end (up to
        // rounding residue).
        let mut walk: Vec<NodeId> = vec![start];
        let mut pos: BTreeMap<NodeId, usize> = BTreeMap::from([(start, 0)]);
        loop {
            let u = *walk.last().unwrap();
            let Some((&(_, v), _)) = weight.range((u, NodeId(0))..=(u, NodeId(u32::MAX))).next()
            else {
                // Dead end: only legal if everything left is rounding noise.
                let max_left = weight.values().copied().max().unwrap_or(0);
                assert!(
                    max_left <= RESIDUE_MICROS,
                    "walk dead-ended at {u} with {max_left}µ remaining — input was \
                     not a circulation"
                );
                break 'peel;
            };
            if let Some(&at) = pos.get(&v) {
                // Cycle found: walk[at..] + closing edge.
                let cycle: Vec<NodeId> = walk[at..].to_vec();
                let mut min_w = i64::MAX;
                for i in 0..cycle.len() {
                    let a = cycle[i];
                    let b = cycle[(i + 1) % cycle.len()];
                    min_w = min_w.min(weight[&(a, b)]);
                }
                for i in 0..cycle.len() {
                    let a = cycle[i];
                    let b = cycle[(i + 1) % cycle.len()];
                    let w = weight.get_mut(&(a, b)).unwrap();
                    *w -= min_w;
                    if *w == 0 {
                        weight.remove(&(a, b));
                    }
                }
                cycles.push((cycle, Amount::from_micros(min_w).as_tokens()));
                break;
            }
            pos.insert(v, walk.len());
            walk.push(v);
        }
    }
    cycles
}

/// Per-channel directional flows resulting from routing a demand on a
/// spanning tree of `network`.
///
/// `flows[channel] = (rate a->b, rate b->a)` in tokens/second.
pub type TreeFlows = Vec<(f64, f64)>;

/// Routes every demand pair along the unique path of a BFS spanning tree
/// rooted at node 0, returning the per-channel directional rates.
///
/// Per Proposition 1, when `demand` is a circulation the resulting flows are
/// perfectly balanced on every channel. Returns `None` if the network is
/// disconnected (no spanning tree covers all participants).
pub fn route_on_spanning_tree(network: &Network, demand: &DemandMatrix) -> Option<TreeFlows> {
    let n = network.num_nodes();
    if n == 0 {
        return Some(Vec::new());
    }
    // BFS tree: parent node + connecting channel.
    let root = NodeId(0);
    let mut parent: Vec<Option<(NodeId, spider_core::ChannelId)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[root.index()] = true;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for &(v, c) in network.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some((u, c));
                queue.push_back(v);
            }
        }
    }

    let mut flows: TreeFlows = vec![(0.0, 0.0); network.num_channels()];
    // Depth for LCA computation.
    let mut depth = vec![0u32; n];
    {
        let order = {
            let mut topo = vec![root];
            let mut i = 0;
            while i < topo.len() {
                let u = topo[i];
                i += 1;
                for &(v, _) in network.neighbors(u) {
                    if parent[v.index()].map(|(p, _)| p) == Some(u) {
                        topo.push(v);
                    }
                }
            }
            topo
        };
        for u in order {
            if let Some((p, _)) = parent[u.index()] {
                depth[u.index()] = depth[p.index()] + 1;
            }
        }
    }

    for (src, dst, rate) in demand.entries() {
        if !seen[src.index()] || !seen[dst.index()] {
            return None;
        }
        // Climb to the LCA, pushing flow up from src and down to dst.
        let (mut a, mut b) = (src, dst);
        while a != b {
            if depth[a.index()] >= depth[b.index()] {
                let (p, c) = parent[a.index()].expect("non-root has a parent");
                let ch = network.channel(c);
                // a sends toward p.
                if ch.a == a {
                    flows[c.index()].0 += rate;
                } else {
                    flows[c.index()].1 += rate;
                }
                a = p;
            } else {
                let (p, c) = parent[b.index()].expect("non-root has a parent");
                let ch = network.channel(c);
                // flow travels p -> b (toward dst).
                if ch.a == p {
                    flows[c.index()].0 += rate;
                } else {
                    flows[c.index()].1 += rate;
                }
                b = p;
            }
        }
    }
    Some(flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::Amount;

    #[test]
    fn fig5_decomposition_value_is_8() {
        let demand = DemandMatrix::fig4_example();
        let dec = decompose(&demand);
        assert!((dec.value - 8.0).abs() < 1e-9, "ν(C*) = {}", dec.value);
        assert!((dec.dag.total() - 4.0).abs() < 1e-9);
        assert!((dec.circulation_fraction() - 8.0 / 12.0).abs() < 1e-9);
        assert!(dec.circulation.is_circulation(1e-9));
    }

    #[test]
    fn circulation_plus_dag_equals_demand() {
        let demand = DemandMatrix::fig4_example();
        let dec = decompose(&demand);
        for (s, d, r) in demand.entries() {
            let sum = dec.circulation.rate(s, d) + dec.dag.rate(s, d);
            assert!((sum - r).abs() < 1e-9, "{s}->{d}: {sum} != {r}");
        }
    }

    #[test]
    fn pure_cycle_is_fully_circulation() {
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 3.0);
        d.set(NodeId(1), NodeId(2), 3.0);
        d.set(NodeId(2), NodeId(0), 3.0);
        let dec = decompose(&d);
        assert!((dec.value - 9.0).abs() < 1e-9);
        assert!(dec.dag.is_empty());
    }

    #[test]
    fn pure_dag_has_zero_circulation() {
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 2.0);
        d.set(NodeId(1), NodeId(2), 1.0);
        d.set(NodeId(0), NodeId(2), 4.0);
        let dec = decompose(&d);
        assert_eq!(dec.value, 0.0);
        assert!(dec.circulation.is_empty());
        assert_eq!(dec.dag.total(), 7.0);
    }

    #[test]
    fn two_node_back_and_forth() {
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 5.0);
        d.set(NodeId(1), NodeId(0), 3.0);
        let dec = decompose(&d);
        // Circulation: 3 in each direction; DAG: 2 from 0 to 1.
        assert!((dec.value - 6.0).abs() < 1e-9);
        assert_eq!(dec.dag.rate(NodeId(0), NodeId(1)), 2.0);
    }

    #[test]
    fn greedy_trap_needs_exact_solver() {
        // Two overlapping cycles sharing edge 0->1: a greedy peel that
        // spends the shared edge on the short cycle forfeits the longer one.
        // Edges: 0->1 (1), 1->0 (1), 1->2 (1), 2->0 (1).
        // Max circulation: cycle 0->1->2->0 (value 3) is better than
        // 0->1->0 (value 2)... but both cannot coexist: 0->1 cap is 1.
        // Optimum picks the 3-cycle: value 3.
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 1.0);
        d.set(NodeId(1), NodeId(0), 1.0);
        d.set(NodeId(1), NodeId(2), 1.0);
        d.set(NodeId(2), NodeId(0), 1.0);
        let dec = decompose(&d);
        assert!((dec.value - 3.0).abs() < 1e-9, "got {}", dec.value);
    }

    #[test]
    fn empty_demand() {
        let dec = decompose(&DemandMatrix::new());
        assert_eq!(dec.value, 0.0);
        assert_eq!(dec.circulation_fraction(), 0.0);
    }

    #[test]
    fn peel_cycles_covers_circulation() {
        let demand = DemandMatrix::fig4_example();
        let dec = decompose(&demand);
        let cycles = peel_cycles(&dec.circulation);
        let total: f64 = cycles.iter().map(|(nodes, r)| nodes.len() as f64 * r).sum();
        assert!(
            (total - dec.value).abs() < 1e-6,
            "cycle mass {total} != {}",
            dec.value
        );
        // Re-accumulate edges and compare to the circulation.
        let mut rebuilt = DemandMatrix::new();
        for (nodes, r) in &cycles {
            for i in 0..nodes.len() {
                rebuilt.add(nodes[i], nodes[(i + 1) % nodes.len()], *r);
            }
        }
        for (s, d, r) in dec.circulation.entries() {
            assert!((rebuilt.rate(s, d) - r).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "balanced")]
    fn peel_cycles_rejects_dag() {
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 1.0);
        peel_cycles(&d);
    }

    #[test]
    fn spanning_tree_routing_of_circulation_is_balanced() {
        // Prop 1 (constructive direction): route the Fig. 5 circulation on a
        // spanning tree of the Fig. 4 topology; every channel must balance.
        let mut g = Network::new(5);
        // Fig. 4 topology: 1-2, 2-3, 3-4, 4-5, 5-1, 2-4 (0-based: 0-1, 1-2,
        // 2-3, 3-4, 4-0, 1-3).
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)] {
            g.add_channel(NodeId(a), NodeId(b), Amount::from_whole(100))
                .unwrap();
        }
        let dec = decompose(&DemandMatrix::fig4_example());
        let flows = route_on_spanning_tree(&g, &dec.circulation).unwrap();
        for (i, &(ab, ba)) in flows.iter().enumerate() {
            assert!(
                (ab - ba).abs() < 1e-6,
                "channel {i} imbalanced: {ab} vs {ba}"
            );
        }
        // And the full demand (with its DAG part) must NOT balance.
        let flows_full = route_on_spanning_tree(&g, &DemandMatrix::fig4_example()).unwrap();
        let imbalanced = flows_full.iter().any(|&(ab, ba)| (ab - ba).abs() > 1e-6);
        assert!(imbalanced, "full demand should imbalance some channel");
    }

    #[test]
    fn spanning_tree_routing_fails_on_disconnected() {
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::from_whole(10))
            .unwrap();
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(2), 1.0);
        assert!(route_on_spanning_tree(&g, &d).is_none());
    }

    #[test]
    fn fractional_rates_survive_micro_rounding() {
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 0.333333);
        d.set(NodeId(1), NodeId(0), 0.333333);
        let dec = decompose(&d);
        assert!((dec.value - 0.666666).abs() < 1e-6);
    }
}
