//! A dense, two-phase primal simplex solver for linear programs.
//!
//! This is the exact-LP substrate used to solve the paper's fluid-model
//! routing programs (eqs. (1)–(5), (6)–(11), (12)–(18)). The path-form LPs
//! are small (thousands of variables), so a dense tableau is simple and fast
//! enough; Bland's rule is engaged after a pivot budget to guarantee
//! termination under degeneracy.
//!
//! ```
//! use spider_opt::simplex::{LinearProgram, Relation, LpOutcome};
//! // maximize x + y  s.t.  x + 2y <= 4,  3x + y <= 6
//! let mut lp = LinearProgram::new(2);
//! lp.set_objective(&[(0, 1.0), (1, 1.0)]);
//! lp.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
//! lp.add_constraint(&[(0, 3.0), (1, 1.0)], Relation::Le, 6.0);
//! match lp.solve() {
//!     LpOutcome::Optimal(sol) => {
//!         assert!((sol.objective - 2.8).abs() < 1e-9);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```

use std::fmt;

/// Relation of a linear constraint row to its right-hand side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `Σ a_j x_j ≤ b`
    Le,
    /// `Σ a_j x_j ≥ b`
    Ge,
    /// `Σ a_j x_j = b`
    Eq,
}

#[derive(Clone, Debug)]
struct Row {
    coeffs: Vec<(usize, f64)>,
    rel: Relation,
    rhs: f64,
}

/// A linear program `maximize c·x subject to rows, x ≥ 0`.
///
/// Variables are indexed `0..num_vars` and implicitly non-negative.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

/// A primal solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal variable assignment.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
    /// Number of simplex pivots performed (both phases).
    pub pivots: usize,
}

/// Result of solving a [`LinearProgram`].
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

impl LpOutcome {
    /// Unwraps the optimal solution.
    ///
    /// # Panics
    /// Panics if the outcome is not [`LpOutcome::Optimal`].
    pub fn expect_optimal(self) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal LP solution, got {other:?}"),
        }
    }
}

impl fmt::Display for LpOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpOutcome::Optimal(s) => write!(f, "optimal (objective {:.6})", s.objective),
            LpOutcome::Infeasible => write!(f, "infeasible"),
            LpOutcome::Unbounded => write!(f, "unbounded"),
        }
    }
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Creates an LP over `num_vars` non-negative variables with a zero
    /// objective and no constraints.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets objective coefficients from sparse `(var, coeff)` pairs
    /// (unmentioned variables keep coefficient zero).
    pub fn set_objective(&mut self, coeffs: &[(usize, f64)]) {
        for &(j, c) in coeffs {
            assert!(j < self.num_vars, "objective var {j} out of range");
            self.objective[j] = c;
        }
    }

    /// Adds a constraint from sparse `(var, coeff)` pairs.
    ///
    /// Duplicate variable indices are summed.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], rel: Relation, rhs: f64) {
        for &(j, _) in coeffs {
            assert!(j < self.num_vars, "constraint var {j} out of range");
        }
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
    }

    /// Solves the LP with two-phase primal simplex.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve()
    }
}

/// Dense simplex tableau.
///
/// Columns: `0..n` structural, then slack/surplus, then artificial; the
/// right-hand side is stored separately. Row 0 of `cost` is the phase
/// objective in reduced form.
struct Tableau {
    /// a[i][j]: constraint matrix after adding slack/artificial columns.
    a: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Phase-2 objective over all columns (zero for slack/artificial).
    obj: Vec<f64>,
    /// basis[i] = column basic in row i.
    basis: Vec<usize>,
    n_structural: usize,
    n_total: usize,
    artificial_start: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.rows.len();
        let n = lp.num_vars;
        // Count extra columns.
        let mut n_slack = 0;
        let mut n_artificial = 0;
        for row in &lp.rows {
            // Normalize to rhs >= 0 first; relation may flip.
            let rel = effective_relation(row);
            match rel {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_artificial += 1;
                }
                Relation::Eq => n_artificial += 1,
            }
        }
        let n_total = n + n_slack + n_artificial;
        let artificial_start = n + n_slack;
        let mut a = vec![vec![0.0; n_total]; m];
        let mut rhs = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut next_art = artificial_start;

        for (i, row) in lp.rows.iter().enumerate() {
            let flip = row.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            for &(j, c) in &row.coeffs {
                a[i][j] += sign * c;
            }
            rhs[i] = sign * row.rhs;
            match effective_relation(row) {
                Relation::Le => {
                    a[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    a[i][next_slack] = -1.0;
                    next_slack += 1;
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        let mut obj = vec![0.0; n_total];
        obj[..n].copy_from_slice(&lp.objective);

        Tableau {
            a,
            rhs,
            obj,
            basis,
            n_structural: n,
            n_total,
            artificial_start,
        }
    }

    fn solve(mut self) -> LpOutcome {
        let mut pivots = 0usize;

        // Phase 1: minimize the sum of artificial variables, i.e. maximize
        // -(sum of artificials). Skip when there are none.
        if self.artificial_start < self.n_total {
            let mut phase1 = vec![0.0; self.n_total];
            for v in phase1.iter_mut().skip(self.artificial_start) {
                *v = -1.0;
            }
            let (reduced, mut value) = self.reduced_costs(&phase1);
            let mut reduced = reduced;
            match self.optimize(&mut reduced, &mut value, self.n_total, &mut pivots) {
                SimplexEnd::Optimal => {}
                SimplexEnd::Unbounded => {
                    // Phase-1 objective is bounded by 0; unbounded indicates a bug.
                    unreachable!("phase-1 simplex cannot be unbounded")
                }
            }
            if value < -1e-7 {
                return LpOutcome::Infeasible;
            }
            // Drive remaining artificial variables out of the basis.
            for i in 0..self.a.len() {
                if self.basis[i] >= self.artificial_start {
                    // Find a non-artificial column with a nonzero pivot.
                    if let Some(j) = (0..self.artificial_start).find(|&j| self.a[i][j].abs() > EPS)
                    {
                        self.pivot(i, j);
                        pivots += 1;
                    }
                    // If none exists the row is redundant (all-zero); the
                    // artificial stays basic at value 0, which is harmless.
                }
            }
        }

        // Phase 2: maximize the true objective, artificials pinned at zero by
        // removing them from consideration.
        let objective = self.obj.clone();
        let (mut reduced, mut value) = self.reduced_costs(&objective);
        // Artificial columns are banned from re-entering in phase 2.
        match self.optimize(&mut reduced, &mut value, self.artificial_start, &mut pivots) {
            SimplexEnd::Optimal => {}
            SimplexEnd::Unbounded => return LpOutcome::Unbounded,
        }

        let mut x = vec![0.0; self.n_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_structural {
                x[b] = self.rhs[i];
            }
        }
        LpOutcome::Optimal(LpSolution {
            x,
            objective: value,
            pivots,
        })
    }

    /// Computes the reduced-cost row and current objective value for a given
    /// objective vector, pricing out the basic columns.
    fn reduced_costs(&self, objective: &[f64]) -> (Vec<f64>, f64) {
        let mut reduced = objective.to_vec();
        let mut value = 0.0;
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = objective[b];
            if cb != 0.0 {
                value += cb * self.rhs[i];
                for (r, &aij) in reduced.iter_mut().zip(&self.a[i]) {
                    *r -= cb * aij;
                }
            }
        }
        (reduced, value)
    }

    /// Primal simplex iterations on the current basis for the given reduced
    /// costs (updated in place along with the objective value). Columns at
    /// index `ban_from` and beyond are never selected as entering.
    fn optimize(
        &mut self,
        reduced: &mut [f64],
        value: &mut f64,
        ban_from: usize,
        pivots: &mut usize,
    ) -> SimplexEnd {
        let m = self.a.len();
        // After this many pivots switch from Dantzig to Bland (anti-cycling).
        let bland_after = 50 * (m + self.n_total) + 1000;
        let mut local = 0usize;
        loop {
            // Entering column.
            let entering = if local < bland_after {
                // Dantzig: most positive reduced cost.
                let mut best = EPS;
                let mut col = None;
                for (j, &r) in reduced.iter().enumerate().take(ban_from) {
                    if r > best {
                        best = r;
                        col = Some(j);
                    }
                }
                col
            } else {
                // Bland: smallest index with positive reduced cost.
                reduced[..ban_from].iter().position(|&r| r > EPS)
            };
            let Some(e) = entering else {
                return SimplexEnd::Optimal;
            };

            // Ratio test for the leaving row.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let aie = self.a[i][e];
                if aie > EPS {
                    let ratio = self.rhs[i] / aie;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(l) = leave else {
                return SimplexEnd::Unbounded;
            };

            self.pivot(l, e);
            // Update the reduced-cost row with the same elimination.
            let re = reduced[e];
            if re.abs() > 0.0 {
                *value += re * self.rhs[l];
                for (r, &aij) in reduced.iter_mut().zip(&self.a[l]) {
                    *r -= re * aij;
                }
                reduced[e] = 0.0;
            }
            *pivots += 1;
            local += 1;
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS, "pivot on (near-)zero element");
        let inv = 1.0 / p;
        for j in 0..self.n_total {
            self.a[row][j] *= inv;
        }
        self.rhs[row] *= inv;
        self.a[row][col] = 1.0; // kill roundoff
        for i in 0..self.a.len() {
            if i != row {
                let factor = self.a[i][col];
                if factor.abs() > EPS {
                    for j in 0..self.n_total {
                        self.a[i][j] -= factor * self.a[row][j];
                    }
                    self.rhs[i] -= factor * self.rhs[row];
                    self.a[i][col] = 0.0;
                    if self.rhs[i].abs() < 1e-12 {
                        self.rhs[i] = 0.0;
                    }
                }
            }
        }
        self.basis[row] = col;
    }
}

fn effective_relation(row: &Row) -> Relation {
    if row.rhs >= 0.0 {
        row.rel
    } else {
        match row.rel {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    }
}

enum SimplexEnd {
    Optimal,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_2d_maximum() {
        // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 3.0), (1, 2.0)]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 12.0);
        assert_close(sol.x[0], 4.0);
        assert_close(sol.x[1], 0.0);
    }

    #[test]
    fn interior_optimum() {
        // maximize x + y s.t. x + 2y <= 4, 3x + y <= 6 -> intersection (1.6, 1.2).
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0), (1, 1.0)]);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(0, 3.0), (1, 1.0)], Relation::Le, 6.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 2.8);
        assert_close(sol.x[0], 1.6);
        assert_close(sol.x[1], 1.2);
    }

    #[test]
    fn equality_constraints() {
        // maximize 2x + y s.t. x + y = 3, x <= 2 -> x=2, y=1, obj 5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 2.0), (1, 1.0)]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 5.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 1.0);
    }

    #[test]
    fn ge_constraints_and_phase1() {
        // maximize -x - y (i.e. minimize x + y) s.t. x + y >= 2, x >= 0.5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, -1.0), (1, -1.0)]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 2.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 0.5);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, -2.0);
        assert!(sol.x[0] >= 0.5 - 1e-9);
        assert_close(sol.x[0] + sol.x[1], 2.0);
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2 cannot hold.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[(0, 1.0)]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert!(matches!(lp.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // maximize x with only x >= 1.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[(0, 1.0)]);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        assert!(matches!(lp.solve(), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // maximize x s.t. -x <= -2 (i.e. x >= 2), x <= 5.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[(0, 1.0)]);
        lp.add_constraint(&[(0, -1.0)], Relation::Le, -2.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 5.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 0.0);
        assert_close(sol.x[0] + sol.x[1], 1.0);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        // maximize x s.t. (0.5 + 0.5) x <= 3 -> x = 3.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[(0, 1.0)]);
        lp.add_constraint(&[(0, 0.5), (0, 0.5)], Relation::Le, 3.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: several constraints through the same vertex.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0), (1, 1.0)]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, 0.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (3, 4), 2 demands (2, 5), costs [[1,3],[2,1]].
        // minimize -> maximize negative. Optimal: x00=2, x01=1, x11=4, cost 9.
        let mut lp = LinearProgram::new(4); // x00 x01 x10 x11
        lp.set_objective(&[(0, -1.0), (1, -3.0), (2, -2.0), (3, -1.0)]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 3.0);
        lp.add_constraint(&[(2, 1.0), (3, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(0, 1.0), (2, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(1, 1.0), (3, 1.0)], Relation::Eq, 5.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, -9.0);
    }

    #[test]
    fn moderately_sized_random_like_lp() {
        // Deterministic pseudo-random LP, checks that the solver scales and
        // the solution respects all constraints.
        let n = 40;
        let m = 30;
        let mut lp = LinearProgram::new(n);
        let mut state = 0x12345678u64;
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) / 2.0
        };
        let obj: Vec<(usize, f64)> = (0..n).map(|j| (j, rand01())).collect();
        lp.set_objective(&obj);
        let mut rows = Vec::new();
        for _ in 0..m {
            let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rand01())).collect();
            let rhs = 5.0 + 10.0 * rand01();
            rows.push((coeffs.clone(), rhs));
            lp.add_constraint(&coeffs, Relation::Le, rhs);
        }
        let sol = lp.solve().expect_optimal();
        assert!(sol.objective > 0.0);
        for (coeffs, rhs) in rows {
            let lhs: f64 = coeffs.iter().map(|&(j, c)| c * sol.x[j]).sum();
            assert!(lhs <= rhs + 1e-6, "violated: {lhs} > {rhs}");
        }
        for &xj in &sol.x {
            assert!(xj >= -1e-9);
        }
    }
}
