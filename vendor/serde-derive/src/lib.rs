//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stub.
//!
//! Implemented directly over `proc_macro::TokenStream` (the offline build
//! has no `syn`/`quote`). Supports the shapes this workspace uses:
//!
//! - named-field structs, tuple structs (newtypes serialize transparently),
//!   unit structs;
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default);
//! - attributes `#[serde(transparent)]`, `#[serde(skip)]`,
//!   `#[serde(default)]`, `#[serde(default = "path")]`, and
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! Generics are intentionally unsupported (none of the workspace's derived
//! types are generic); deriving on a generic type is a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
    /// Path of a `fn() -> T` producing the default (`default = "path"`).
    default_path: Option<String>,
    skip_serializing_if: Option<String>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// The parsed item shape.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Serde flags gathered from one `#[serde(...)]` attribute list.
#[derive(Default)]
struct SerdeFlags {
    skip: bool,
    default: bool,
    default_path: Option<String>,
    transparent: bool,
    skip_serializing_if: Option<String>,
}

fn parse_serde_flags(tokens: &[TokenTree], flags: &mut SerdeFlags) {
    // tokens are the contents of the parens in `#[serde( ... )]`:
    // comma-separated `ident` or `ident = "literal"` items.
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let key = id.to_string();
            let mut value: Option<String> = None;
            if let (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit))) =
                (tokens.get(i + 1), tokens.get(i + 2))
            {
                if p.as_char() == '=' {
                    let raw = lit.to_string();
                    value = Some(raw.trim_matches('"').to_string());
                    i += 2;
                }
            }
            match key.as_str() {
                "skip" => flags.skip = true,
                "default" => {
                    flags.default = true;
                    flags.default_path = value;
                }
                "transparent" => flags.transparent = true,
                "skip_serializing_if" => flags.skip_serializing_if = value,
                // Unknown serde attributes are ignored, like a subset
                // implementation should.
                _ => {}
            }
        }
        i += 1;
    }
}

/// Consumes leading attributes at `tokens[*i..]`, folding any
/// `#[serde(...)]` contents into `flags`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize, flags: &mut SerdeFlags) {
    while *i + 1 < tokens.len() {
        let is_pound = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            break;
        }
        if let TokenTree::Group(g) = &tokens[*i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                        let args: Vec<TokenTree> = args.stream().into_iter().collect();
                        parse_serde_flags(&args, flags);
                    }
                }
                *i += 2;
                continue;
            }
        }
        break;
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Parses the named fields inside a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut flags = SerdeFlags::default();
        skip_attributes(&tokens, &mut i, &mut flags);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        // Skip `:` then the type, up to a comma at angle-bracket depth 0.
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        let mut angle_depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip: flags.skip,
            default: flags.default,
            default_path: flags.default_path,
            skip_serializing_if: flags.skip_serializing_if,
        });
    }
    fields
}

/// Counts the fields of a tuple struct/variant (top-level commas in the
/// paren group, plus one — accounting for a possible trailing comma).
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth: i32 = 0;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && idx + 1 < tokens.len() =>
            {
                arity += 1;
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut flags = SerdeFlags::default();
        skip_attributes(&tokens, &mut i, &mut flags);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                i += 1;
                VariantBody::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g);
                i += 1;
                VariantBody::Tuple(arity)
            }
            _ => VariantBody::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_item(input: TokenStream) -> (Item, SerdeFlags) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut container_flags = SerdeFlags::default();
    skip_attributes(&tokens, &mut i, &mut container_flags);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic types ({name})");
    }
    let item = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(g),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    (item, container_flags)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_named_serialize_body(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        let access = format!("{access_prefix}{}", f.name);
        let push = format!(
            "__fields.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&{access})));\n",
            f.name
        );
        match &f.skip_serializing_if {
            Some(path) => {
                out.push_str(&format!("if !({path}(&{access})) {{ {push} }}\n"));
            }
            None => out.push_str(&push),
        }
    }
    out.push_str("::serde::Value::Object(__fields)");
    out
}

fn gen_named_deserialize_fields(fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            // Skipped fields are never read from the input (and need not
            // implement `Deserialize`); they always take their default.
            out.push_str(&format!(
                "{0}: ::core::default::Default::default(),\n",
                f.name
            ));
            continue;
        }
        let fallback = if let Some(path) = &f.default_path {
            format!("{path}()")
        } else if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return Err(::serde::DeError::missing_field(\"{}\"))",
                f.name
            )
        };
        out.push_str(&format!(
            "{0}: match {source}.get_field(\"{0}\") {{\n\
             Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             None => {fallback},\n\
             }},\n",
            f.name
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let body = gen_named_serialize_body(fields, "self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            // Newtypes serialize transparently (upstream serde's default for
            // one-field tuple structs); wider tuples as arrays.
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                        ));
                    }
                    VariantBody::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut payload = String::from(
                            "{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            if f.skip {
                                continue;
                            }
                            payload.push_str(&format!(
                                "__fields.push((String::from(\"{0}\"), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        payload.push_str("::serde::Value::Object(__fields) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let body = gen_named_deserialize_fields(fields, "__v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if !matches!(__v, ::serde::Value::Object(_)) {{\n\
                 return Err(::serde::DeError::expected(\"object\", __v));\n}}\n\
                 Ok({name} {{\n{body}}})\n}}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {arity} => \
                     Ok({name}({items})),\n\
                     _ => Err(::serde::DeError::expected(\"{arity}-element array\", __v)),\n}}",
                    items = items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_: &::serde::Value) -> Result<Self, ::serde::DeError> {{ Ok({name}) }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantBody::Tuple(arity) => {
                        let expr = if *arity == 1 {
                            format!(
                                "Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "match __payload {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                 Ok({name}::{vn}({items})),\n\
                                 _ => Err(::serde::DeError::expected(\"{arity}-element array\", __payload)),\n}}",
                                items = items.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("\"{vn}\" => {{ {expr} }}\n"));
                    }
                    VariantBody::Named(fields) => {
                        let body = gen_named_deserialize_fields(fields, "__payload");
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{\n{body}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::DeError::unknown_variant(__other)),\n}},\n\
                 ::serde::Value::Object(__obj) if __obj.len() == 1 => {{\n\
                 let (__vname, __payload) = &__obj[0];\n\
                 match __vname.as_str() {{\n\
                 {payload_arms}\
                 __other => Err(::serde::DeError::unknown_variant(__other)),\n}}\n}},\n\
                 _ => Err(::serde::DeError::expected(\"enum value\", __v)),\n}}\n}}\n}}\n"
            )
        }
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (item, _flags) = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (item, _flags) = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
