//! Minimal offline reimplementation of the subset of the `bytes` crate this
//! workspace uses: `Bytes`, `BytesMut`, and the `Buf`/`BufMut` traits with
//! big-endian integer accessors. Vendored because the build environment has
//! no access to crates.io; see `vendor/README.md`.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_i64(-5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 300);
        assert_eq!(cursor.get_u32(), 70_000);
        assert_eq!(cursor.get_u64(), 1 << 40);
        assert_eq!(cursor.get_i64(), -5);
        assert_eq!(cursor.remaining(), 0);
    }
}
