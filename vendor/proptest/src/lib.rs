//! Minimal offline reimplementation of the subset of `proptest` this
//! workspace uses. Vendored because the build environment has no access to
//! crates.io; see `vendor/README.md`.
//!
//! Differences from upstream, deliberately accepted for a test-only stub:
//! cases are sampled from a deterministic per-test RNG (seeded from the test
//! name and case index) rather than an entropy source, there is **no
//! shrinking**, and `.proptest-regressions` files are ignored. A failing
//! case panics with the case number so it can be replayed — the stream for
//! a given test name is stable across runs and platforms.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default.
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

/// An explicit property failure, for bodies that `return Err(..)` instead
/// of asserting.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the type's domain.
    fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Uniform in a wide symmetric range; avoids NaN/inf surprises that
        // raw bit patterns would produce.
        rng.random_range(-1.0e12..1.0e12)
    }
}

/// The whole-domain strategy for `T` (`any::<u32>()` etc.).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::{Rng, RngExt};

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG: FNV-1a over the test name, mixed with the
/// case index. Exposed for the `proptest!` macro expansion, not user code.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Property assertion: like `assert!`, naming the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Property assertion: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                // Name the case in panics so a failure is replayable (the
                // per-name stream is stable).
                let __guard = $crate::__CaseReporter {
                    name: stringify!($name),
                    case: __case,
                    armed: true,
                };
                // Upstream property bodies may `return Err(TestCaseError)`;
                // run them in a Result-valued closure so both that style and
                // plain assertions work.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    Ok(()) => ::std::mem::forget(__guard),
                    Err(e) => panic!("{e}"),
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Prints the failing case number when a property body panics.
#[doc(hidden)]
pub struct __CaseReporter {
    #[doc(hidden)]
    pub name: &'static str,
    #[doc(hidden)]
    pub case: u32,
    #[doc(hidden)]
    pub armed: bool,
}

impl Drop for __CaseReporter {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest (vendored stub): property `{}` failed at case {} of the \
                 deterministic stream",
                self.name, self.case
            );
        }
    }
}

/// Declares property tests: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_stream_per_name() {
        let mut a = crate::__case_rng("x", 3);
        let mut b = crate::__case_rng("x", 3);
        let s = 0u64..100;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 4usize..12,
            frac in 0.0f64..1.0,
        ) {
            prop_assert!((4..12).contains(&n));
            prop_assert!((0.0..1.0).contains(&frac));
        }

        #[test]
        fn vec_strategy_obeys_size(v in collection::vec((0u8..4, 1i64..4), 1..60)) {
            prop_assert!(!v.is_empty() && v.len() < 60);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((1..4).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(x in any::<u32>()) {
            let _ = x;
        }
    }
}
