//! Minimal offline reimplementation of the subset of `criterion` this
//! workspace uses. Vendored because the build environment has no access to
//! crates.io; see `vendor/README.md`.
//!
//! It times each benchmark with `std::time::Instant` over a fixed number of
//! iterations and prints mean wall-clock time per iteration — no warmup
//! statistics, outlier analysis, or HTML reports. Good enough to run
//! `cargo bench` and compare runs by eye.

use std::fmt::Write as _;
use std::hint;
use std::time::Instant;

/// Opaque value barrier: prevents the optimizer from deleting benchmark
/// bodies whose results are unused.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A label for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` label.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut label = function_name.into();
        let _ = write!(label, "/{parameter}");
        BenchmarkId { label }
    }

    /// A bare parameter label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs closures and measures their wall-clock time.
pub struct Bencher {
    /// Iterations to time (set from the owning group's `sample_size`).
    iters: u64,
    /// Measured mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn print_result(name: &str, mean_ns: f64, iters: u64) {
    let (value, unit) = if mean_ns >= 1.0e9 {
        (mean_ns / 1.0e9, "s")
    } else if mean_ns >= 1.0e6 {
        (mean_ns / 1.0e6, "ms")
    } else if mean_ns >= 1.0e3 {
        (mean_ns / 1.0e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("{name:<60} {value:>10.3} {unit}/iter  ({iters} iters)");
}

fn run_bench(name: &str, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size,
        mean_ns: 0.0,
    };
    f(&mut b);
    print_result(name, b.mean_ns, b.iters);
}

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Times one standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// Times one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op here; output is printed as benchmarks run).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_add(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, bench_add);

    #[test]
    fn runs_to_completion() {
        benches();
    }
}
