//! Minimal offline reimplementation of the subset of `serde` this workspace
//! uses. Vendored because the build environment has no access to crates.io;
//! see `vendor/README.md`.
//!
//! Instead of upstream serde's visitor-based data model, this stub
//! serializes through an owned [`Value`] tree (the same model `serde_json`
//! exposes as `serde_json::Value`). The `#[derive(Serialize, Deserialize)]`
//! macros from the sibling `serde-derive` crate generate impls of the
//! [`Serialize`]/[`Deserialize`] traits below, honoring the container and
//! field attributes the workspace relies on: `#[serde(transparent)]`,
//! `#[serde(skip)]`, `#[serde(default)]`, and
//! `#[serde(skip_serializing_if = "path")]`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object fields preserve insertion order so
/// serialized output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers JSON numbers without a fraction).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64` when losslessly possible.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as an `f64` when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected, and a rendering of what was
/// found instead.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A general mismatch error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// A missing-field error.
    pub fn missing_field(name: &str) -> Self {
        DeError {
            msg: format!("missing field `{name}`"),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError {
            msg: format!("expected {what}, got {got:?}"),
        }
    }

    /// An unknown-enum-variant error.
    pub fn unknown_variant(name: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{name}`"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts to the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::I64(v),
            Err(_) => Value::U64(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            _ => Err(DeError::expected("u64", v)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected {expected}-tuple, got {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array", v)),
                }
            }
        }
    };
}
impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Maps serialize as arrays of `[key, value]` pairs, which stays lossless
/// for non-string keys (upstream serde_json would reject those).
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(<(K, V)>::from_value).collect(),
            _ => Err(DeError::expected("array of [key, value] pairs", v)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output requires a stable order; sort by rendered key.
        let mut pairs: Vec<(String, Value, Value)> = self
            .iter()
            .map(|(k, v)| {
                let kv = k.to_value();
                (format!("{kv:?}"), kv, v.to_value())
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(_, k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(<(K, V)>::from_value).collect(),
            _ => Err(DeError::expected("array of [key, value] pairs", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1.0f64, 2.0f64, 3.0f64), (4.0, 5.0, 6.0)];
        let round = Vec::<(f64, f64, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);

        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), 0.5f64);
        let round = BTreeMap::<(u32, u32), f64>::from_value(&m.to_value()).unwrap();
        assert_eq!(round, m);

        assert_eq!(Option::<i32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i32>::from_value(&Value::I64(3)).unwrap(), Some(3));
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::I64(1))]);
        assert_eq!(v.get_field("a"), Some(&Value::I64(1)));
        assert_eq!(v.get_field("b"), None);
    }
}
