//! Minimal offline reimplementation of the subset of the `rand` crate this
//! workspace uses: the `Rng`/`RngExt`/`SeedableRng` traits, `rngs::StdRng`,
//! and `seq::SliceRandom`. Vendored because the build environment has no
//! access to crates.io; see `vendor/README.md`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`, but fully deterministic for a given seed,
//! which is all the workspace's generators require.

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their whole domain
/// (the `rng.random()` entry point).
pub trait Random {
    /// Draws one uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample (the `rng.random_range(..)`
/// entry point). Implemented for `a..b` and `a..=b` over the integer types
/// and `f64`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire-style
/// widening multiply, with a rejection loop for exactness.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    // Rejection sampling on the top bits keeps the distribution exact.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u = f64::random(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        let u = f64::random(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample over `T`'s whole domain (`[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::random(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: the standard seed-expansion generator.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Alias: the small generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..10);
            assert!((3..10).contains(&x));
            let y: usize = rng.random_range(3..=10);
            assert!((3..=10).contains(&y));
            let f: f64 = rng.random_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
