//! Minimal offline reimplementation of the subset of `serde_json` this
//! workspace uses: `to_string`, `to_string_pretty`, `to_value`, `from_str`,
//! plus the `Value` tree (shared with the vendored `serde`) and an
//! insertion-ordered `Map`. Vendored because the build environment has no
//! access to crates.io; see `vendor/README.md`.
//!
//! Output format matches upstream closely enough for the workspace's tests:
//! compact form is `"key":value` with no spaces, objects keep insertion
//! order, and floats print in shortest-round-trip form.

use std::fmt;

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// An insertion-ordered string-keyed object, mirroring
/// `serde_json::Map<String, Value>`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K, V> Map<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Appends a key/value pair (no de-duplication, like repeated inserts
    /// into a JSON document builder).
    pub fn insert(&mut self, key: K, value: V) {
        self.entries.push((key, value));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(K, V)> {
        self.entries.iter()
    }
}

impl<K, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Serialize for Map<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.entries.clone())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes to a compact JSON string (`"key":value`, no whitespace).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes to an indented JSON string (two-space indent, like upstream).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is shortest-round-trip formatting: deterministic and exact.
        out.push_str(&format!("{v:?}"));
    } else {
        // Upstream errors on non-finite floats; emitting null keeps the
        // stub infallible while staying valid JSON.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    const INDENT: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
        other => write_value(out, other),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.consume_lit("null") => Ok(Value::Null),
            Some(b't') if self.consume_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_shape() {
        let v = Value::Object(vec![
            ("attempted".into(), Value::I64(10)),
            ("ratio".into(), Value::F64(0.5)),
            ("name".into(), Value::Str("wf\"x".into())),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"attempted":10,"ratio":0.5,"name":"wf\"x"}"#
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, -2.5, true, null, "s\n"], "b": {"c": 18446744073709551615}}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        assert_eq!(
            v.get_field("b").unwrap().get_field("c"),
            Some(&Value::U64(u64::MAX))
        );
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::I64(1)]))]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123_456_789.123_456_79] {
            let s = to_string(&Value::F64(x)).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back, Value::F64(x));
        }
    }
}
