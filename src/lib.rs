//! # Spider: packet-switched payment channel network routing
//!
//! A from-scratch Rust reproduction of *Routing Cryptocurrency with the
//! Spider Network* (HotNets 2018): imbalance-aware routing for payment
//! channel networks, the fluid-model optimization theory behind it, every
//! baseline it is evaluated against, and a deterministic discrete-event
//! simulator to run them all.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! - [`core`] — amounts, network graphs, payment graphs, paths,
//! - [`opt`] — simplex LP, max-flow, min-cost flow, circulation
//!   decomposition (Proposition 1), fluid LPs, the primal-dual algorithm,
//! - [`topology`] — ISP-like / Ripple-like / standard graph generators,
//! - [`workload`] — heavy-tailed transaction traces and demand matrices,
//! - [`routing`] — Spider (waterfilling, LP, prices) and the baselines
//!   (shortest-path, max-flow, SpeedyMurmurs, SilentWhispers),
//! - [`sim`] — the discrete-event simulator and metrics,
//! - [`telemetry`] — metrics registry, payment-lifecycle tracing, and
//!   report summaries (disabled by default, deterministic when enabled).
//!
//! ## Quickstart
//!
//! ```
//! use spider::prelude::*;
//!
//! // A 4-node ring with 100-token channels.
//! let network = spider::topology::ring(4, Amount::from_whole(100));
//!
//! // One 30-token payment from node 0 to node 2, packet-switched.
//! let payment = Transaction {
//!     id: PaymentId(0),
//!     src: NodeId(0),
//!     dst: NodeId(2),
//!     amount: Amount::from_whole(30),
//!     arrival: 0.1,
//! };
//! let mut scheme = WaterfillingScheme::new();
//! let report = spider::sim::run(&network, &[payment], &mut scheme, &SimConfig::new(10.0));
//! assert_eq!(report.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spider_core as core;
pub use spider_opt as opt;
pub use spider_routing as routing;
pub use spider_sim as sim;
pub use spider_telemetry as telemetry;
pub use spider_topology as topology;
pub use spider_workload as workload;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use spider_core::{
        Amount, BalanceView, Channel, ChannelId, CoreError, DemandMatrix, Direction, Network,
        NodeId, Path, PaymentId,
    };
    pub use spider_routing::{
        LpScheme, MaxFlowScheme, RoutingScheme, SchemeKind, ShortestPathScheme,
        SilentWhispersScheme, SpeedyMurmursScheme, UnitDecision, WaterfillingScheme,
    };
    pub use spider_sim::{
        latest_snapshot, run, run_queued, run_sharded, CheckpointSpec, Ledger, QueuedConfig,
        SchedulePolicy, ShardScheme, ShardedConfig, SimConfig, SimReport, SnapshotError,
    };
    pub use spider_telemetry::Telemetry;
    pub use spider_topology::Partition;
    pub use spider_workload::{TraceConfig, Transaction};
}
