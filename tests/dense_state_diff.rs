//! Differential lockdown of the dense (`Vec`-indexed) ledger.
//!
//! [`ShadowLedger`] is a deliberately naive, map-keyed reimplementation of
//! the HTLC ledger semantics — `BTreeMap<ChannelId, ..>` outside,
//! `BTreeMap<NodeId, Amount>` per channel — mirroring the pre-dense
//! bookkeeping style. Both ledgers are driven through identical random
//! operation sequences (path locks/settles/refunds, single-hop forwarding,
//! on-chain rebalancing deposits/withdrawals, and deliberately invalid
//! "fault" operations), and must agree on every balance, every conservation
//! check, and every error value.

use proptest::prelude::*;
use spider_core::{Amount, ChannelId, CoreError, Network, NodeId, Path};
use spider_routing::{edge_disjoint_paths, shortest_path};
use spider_sim::{Ledger, LedgerAudit};
use spider_topology::erdos_renyi;
use std::collections::BTreeMap;

/// Map-keyed reference ledger. Same observable semantics as
/// [`spider_sim::Ledger`], different data layout: every lookup goes through
/// ordered maps, every balance is keyed by endpoint node rather than a
/// side index.
struct ShadowLedger {
    channels: BTreeMap<ChannelId, ShadowChannel>,
}

struct ShadowChannel {
    available: BTreeMap<NodeId, Amount>,
    inflight: Amount,
    capacity: Amount,
}

impl ShadowLedger {
    fn new(network: &Network) -> Self {
        let channels = network
            .channels()
            .iter()
            .map(|ch| {
                let mut available = BTreeMap::new();
                available.insert(ch.a, ch.balance_a);
                available.insert(ch.b, ch.balance_b);
                (
                    ch.id,
                    ShadowChannel {
                        available,
                        inflight: Amount::ZERO,
                        capacity: ch.capacity(),
                    },
                )
            })
            .collect();
        ShadowLedger { channels }
    }

    fn endpoint(network: &Network, channel: ChannelId, node: NodeId) -> Result<NodeId, CoreError> {
        let ch = network.channel(channel);
        if node == ch.a || node == ch.b {
            Ok(node)
        } else {
            Err(CoreError::NotAnEndpoint { node, channel })
        }
    }

    fn lock_path(&mut self, path: &Path, amount: Amount) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            let have = self.channels[&c].available[&from];
            if have < amount {
                return Err(CoreError::InsufficientFunds {
                    channel: c,
                    from,
                    available: have.micros(),
                    requested: amount.micros(),
                });
            }
        }
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            let st = self.channels.get_mut(&c).unwrap();
            *st.available.get_mut(&from).unwrap() -= amount;
            st.inflight += amount;
        }
        Ok(())
    }

    fn check_release(&self, path: &Path, amount: Amount) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        for &(c, _) in path.hops() {
            let inflight = self.channels[&c].inflight;
            if inflight < amount {
                return Err(CoreError::ExcessRelease {
                    channel: c,
                    inflight: inflight.micros(),
                    requested: amount.micros(),
                });
            }
        }
        Ok(())
    }

    fn settle_path(&mut self, path: &Path, amount: Amount) -> Result<(), CoreError> {
        self.check_release(path, amount)?;
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let to = path.nodes()[i + 1];
            let st = self.channels.get_mut(&c).unwrap();
            *st.available.get_mut(&to).unwrap() += amount;
            st.inflight -= amount;
        }
        Ok(())
    }

    fn refund_path(&mut self, path: &Path, amount: Amount) -> Result<(), CoreError> {
        self.check_release(path, amount)?;
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            let st = self.channels.get_mut(&c).unwrap();
            *st.available.get_mut(&from).unwrap() += amount;
            st.inflight -= amount;
        }
        Ok(())
    }

    fn lock_hop(
        &mut self,
        network: &Network,
        channel: ChannelId,
        from: NodeId,
        amount: Amount,
    ) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        let from = Self::endpoint(network, channel, from)?;
        let st = self.channels.get_mut(&channel).unwrap();
        let have = st.available[&from];
        if have < amount {
            return Err(CoreError::InsufficientFunds {
                channel,
                from,
                available: have.micros(),
                requested: amount.micros(),
            });
        }
        *st.available.get_mut(&from).unwrap() -= amount;
        st.inflight += amount;
        Ok(())
    }

    fn settle_hop(
        &mut self,
        network: &Network,
        channel: ChannelId,
        to: NodeId,
        amount: Amount,
    ) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        let to = Self::endpoint(network, channel, to)?;
        let st = self.channels.get_mut(&channel).unwrap();
        if st.inflight < amount {
            return Err(CoreError::ExcessRelease {
                channel,
                inflight: st.inflight.micros(),
                requested: amount.micros(),
            });
        }
        *st.available.get_mut(&to).unwrap() += amount;
        st.inflight -= amount;
        Ok(())
    }

    fn deposit(&mut self, channel: ChannelId, node: NodeId, amount: Amount) {
        let st = self.channels.get_mut(&channel).unwrap();
        *st.available.get_mut(&node).unwrap() += amount;
        st.capacity += amount;
    }

    fn withdraw(&mut self, channel: ChannelId, node: NodeId, amount: Amount) -> Amount {
        let st = self.channels.get_mut(&channel).unwrap();
        let have = st.available[&node];
        let taken = amount.min(have);
        *st.available.get_mut(&node).unwrap() -= taken;
        st.capacity -= taken;
        taken
    }

    fn balances(&self, network: &Network, channel: ChannelId) -> (Amount, Amount) {
        let ch = network.channel(channel);
        let st = &self.channels[&channel];
        (st.available[&ch.a], st.available[&ch.b])
    }

    fn conserves(&self, channel: ChannelId) -> bool {
        let st = &self.channels[&channel];
        let total: Amount = st.available.values().copied().sum::<Amount>() + st.inflight;
        total == st.capacity
    }
}

/// Asserts the dense ledger and the shadow agree on every observable:
/// per-channel balances, in-flight pools, capacities, and conservation.
fn assert_equivalent(network: &Network, dense: &Ledger, shadow: &ShadowLedger) {
    for ch in network.channels() {
        let c = ch.id;
        assert_eq!(
            dense.balances(c),
            shadow.balances(network, c),
            "balances diverged on {c}"
        );
        assert_eq!(
            dense.inflight(c),
            shadow.channels[&c].inflight,
            "inflight diverged on {c}"
        );
        assert_eq!(
            dense.capacity(c),
            shadow.channels[&c].capacity,
            "capacity diverged on {c}"
        );
        assert_eq!(
            dense.conserves(c),
            shadow.conserves(c),
            "conservation verdicts diverged on {c}"
        );
    }
}

/// One step of the generated workload.
#[derive(Clone, Debug)]
enum Op {
    /// Lock `amount` along a multipath route between two nodes (kept in a
    /// pool so it can later settle or refund).
    Lock { pair: usize, amount: u32 },
    /// Settle the oldest pooled lock.
    Settle,
    /// Refund the oldest pooled lock.
    Refund,
    /// Single-hop forwarding lock (router-queue style).
    LockHop {
        channel: usize,
        side: bool,
        amount: u32,
    },
    /// Single-hop settle toward an endpoint.
    SettleHop {
        channel: usize,
        side: bool,
        amount: u32,
    },
    /// On-chain top-up (rebalancing deposit).
    Deposit {
        channel: usize,
        side: bool,
        amount: u32,
    },
    /// On-chain withdrawal (rebalancing drain).
    Withdraw {
        channel: usize,
        side: bool,
        amount: u32,
    },
    /// Fault op: settle a path that was never locked for that amount, or
    /// with a non-endpoint hop node — must fail identically on both.
    BogusRelease { pair: usize, amount: u32 },
    /// Fault op: lock on a channel from a node that is not an endpoint.
    BogusHop {
        channel: usize,
        node: usize,
        amount: u32,
    },
}

/// Decodes one raw generated tuple into an [`Op`]. The vendored proptest
/// stub has no `prop_oneof`/`prop_map`, so ops are drawn as flat tuples
/// (`kind` selector + generic operands) and decoded here.
fn decode_op(raw: ((u8, usize), (usize, u32, bool))) -> Op {
    let ((kind, channel), (pair, amount, side)) = raw;
    match kind {
        0 => Op::Lock { pair, amount },
        1 => Op::Settle,
        2 => Op::Refund,
        3 => Op::LockHop {
            channel,
            side,
            amount,
        },
        4 => Op::SettleHop {
            channel,
            side,
            amount,
        },
        5 => Op::Deposit {
            channel,
            side,
            amount: amount % 2_000 + 1,
        },
        6 => Op::Withdraw {
            channel,
            side,
            amount: amount % 2_000 + 1,
        },
        7 => Op::BogusRelease { pair, amount },
        _ => Op::BogusHop {
            channel,
            node: pair,
            amount: amount % 100 + 1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The dense ledger and the map-keyed shadow stay bit-for-bit
    /// equivalent — balances, audits, and error values — under arbitrary
    /// op sequences.
    #[test]
    fn dense_ledger_matches_map_reference(
        n in 6usize..16,
        seed in 0u64..500,
        raw_ops in proptest::collection::vec(
            ((0u8..9, 0usize..256), (0usize..64, 1u32..5_000, any::<bool>())),
            1..120,
        ),
    ) {
        let network = erdos_renyi(n, 0.5, Amount::from_whole(200), seed);
        let num_channels = network.num_channels();
        if num_channels == 0 {
            // Degenerate draw: nothing to exercise.
            return Ok(());
        }
        let nodes: Vec<NodeId> = network.nodes().collect();

        // Candidate multipath routes between a fixed set of pairs.
        let mut routes: Vec<Path> = Vec::new();
        for (i, &s) in nodes.iter().enumerate() {
            for &d in &nodes[i + 1..] {
                routes.extend(edge_disjoint_paths(&network, s, d, 2));
            }
        }
        if routes.is_empty() {
            return Ok(());
        }

        let mut dense = Ledger::new(&network);
        let mut audit = LedgerAudit::new(&dense);
        let mut shadow = ShadowLedger::new(&network);
        // Pool of successful path locks available to settle/refund.
        let mut locked: Vec<(Path, Amount)> = Vec::new();

        let ops: Vec<Op> = raw_ops.into_iter().map(decode_op).collect();
        for op in &ops {
            match *op {
                Op::Lock { pair, amount } => {
                    let path = routes[pair % routes.len()].clone();
                    let amount = Amount::from_whole(i64::from(amount % 400));
                    let a = dense.lock_path(&network, &path, amount);
                    let b = shadow.lock_path(&path, amount);
                    prop_assert_eq!(&a, &b, "lock_path verdicts diverged");
                    if a.is_ok() {
                        locked.push((path, amount));
                    }
                }
                Op::Settle => {
                    if let Some((path, amount)) = locked.pop() {
                        let a = dense.settle_path(&network, &path, amount);
                        let b = shadow.settle_path(&path, amount);
                        prop_assert_eq!(&a, &b, "settle_path verdicts diverged");
                    }
                }
                Op::Refund => {
                    if let Some((path, amount)) = locked.pop() {
                        let a = dense.refund_path(&network, &path, amount);
                        let b = shadow.refund_path(&path, amount);
                        prop_assert_eq!(&a, &b, "refund_path verdicts diverged");
                    }
                }
                Op::LockHop { channel, side, amount } => {
                    let c = ChannelId((channel % num_channels) as u32);
                    let ch = network.channel(c);
                    let from = if side { ch.b } else { ch.a };
                    let amount = Amount::from_whole(i64::from(amount % 400));
                    let a = dense.lock_hop(&network, c, from, amount);
                    let b = shadow.lock_hop(&network, c, from, amount);
                    prop_assert_eq!(&a, &b, "lock_hop verdicts diverged");
                }
                Op::SettleHop { channel, side, amount } => {
                    let c = ChannelId((channel % num_channels) as u32);
                    let ch = network.channel(c);
                    let to = if side { ch.b } else { ch.a };
                    let amount = Amount::from_whole(i64::from(amount % 400));
                    let a = dense.settle_hop(&network, c, to, amount);
                    let b = shadow.settle_hop(&network, c, to, amount);
                    prop_assert_eq!(&a, &b, "settle_hop verdicts diverged");
                }
                Op::Deposit { channel, side, amount } => {
                    let c = ChannelId((channel % num_channels) as u32);
                    let ch = network.channel(c);
                    let node = if side { ch.b } else { ch.a };
                    let amount = Amount::from_whole(i64::from(amount));
                    dense.deposit(&network, c, node, amount).unwrap();
                    shadow.deposit(c, node, amount);
                    audit.on_deposit(amount);
                }
                Op::Withdraw { channel, side, amount } => {
                    let c = ChannelId((channel % num_channels) as u32);
                    let ch = network.channel(c);
                    let node = if side { ch.b } else { ch.a };
                    let amount = Amount::from_whole(i64::from(amount));
                    let a = dense.withdraw(&network, c, node, amount);
                    let b = shadow.withdraw(c, node, amount);
                    prop_assert_eq!(a, b, "withdraw amounts diverged");
                    audit.on_withdraw(a);
                }
                Op::BogusRelease { pair, amount } => {
                    // Release far more than could ever be in flight; both
                    // ledgers must refuse with the same error and leave
                    // state untouched.
                    let path = routes[pair % routes.len()].clone();
                    let amount = Amount::from_whole(i64::from(amount) + 1_000_000);
                    let a = dense.settle_path(&network, &path, amount);
                    let b = shadow.settle_path(&path, amount);
                    prop_assert_eq!(&a, &b, "bogus settle verdicts diverged");
                    prop_assert!(a.is_err());
                }
                Op::BogusHop { channel, node, amount } => {
                    let c = ChannelId((channel % num_channels) as u32);
                    let ch = network.channel(c);
                    let node = nodes[node % nodes.len()];
                    let amount = Amount::from_whole(i64::from(amount));
                    let a = dense.lock_hop(&network, c, node, amount);
                    let b = shadow.lock_hop(&network, c, node, amount);
                    prop_assert_eq!(&a, &b, "bogus hop verdicts diverged");
                    if node != ch.a && node != ch.b {
                        prop_assert_eq!(
                            a,
                            Err(CoreError::NotAnEndpoint { node, channel: c })
                        );
                    }
                }
            }
            audit.check(&dense, 0.0, "diff-op");
            assert_equivalent(&network, &dense, &shadow);
        }
        // The auditor must agree nothing was violated: every divergence
        // from conservation would have been a shadow divergence too.
        prop_assert_eq!(audit.violations().len(), 0, "auditor found violations");

        // Drain the pool: settle half, refund half; both ledgers must
        // conserve and agree to the end.
        for (i, (path, amount)) in locked.into_iter().enumerate() {
            if i % 2 == 0 {
                prop_assert_eq!(
                    dense.settle_path(&network, &path, amount),
                    shadow.settle_path(&path, amount)
                );
            } else {
                prop_assert_eq!(
                    dense.refund_path(&network, &path, amount),
                    shadow.refund_path(&path, amount)
                );
            }
        }
        // Hop-level locks have no pooled counterpart, so in-flight funds may
        // legitimately remain — but both ledgers must agree on them and
        // every channel must still conserve.
        assert_equivalent(&network, &dense, &shadow);
        prop_assert!(dense.conserves_all());
    }
}

/// Deterministic single-path smoke version of the differential test, so a
/// regression fails fast with a readable trace even if proptest shrinking
/// misbehaves.
#[test]
fn dense_ledger_matches_reference_smoke() {
    let network = erdos_renyi(8, 0.6, Amount::from_whole(100), 7);
    let nodes: Vec<NodeId> = network.nodes().collect();
    let mut dense = Ledger::new(&network);
    let mut shadow = ShadowLedger::new(&network);
    let mut pool = Vec::new();
    for (i, &s) in nodes.iter().enumerate() {
        for &d in &nodes[i + 1..] {
            let Some(path) = shortest_path(&network, s, d) else {
                continue;
            };
            let amount = Amount::from_whole(3);
            let a = dense.lock_path(&network, &path, amount);
            let b = shadow.lock_path(&path, amount);
            assert_eq!(a, b);
            if a.is_ok() {
                pool.push((path, amount));
            }
            assert_equivalent(&network, &dense, &shadow);
        }
    }
    assert!(!pool.is_empty());
    for (i, (path, amount)) in pool.into_iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(
                dense.settle_path(&network, &path, amount),
                shadow.settle_path(&path, amount)
            );
        } else {
            assert_eq!(
                dense.refund_path(&network, &path, amount),
                shadow.refund_path(&path, amount)
            );
        }
        assert_equivalent(&network, &dense, &shadow);
    }
    assert!(dense.conserves_all());
}
