//! Bench-harness determinism lockdown: the `spider-experiments bench`
//! result section must be byte-identical across repeated runs and across
//! worker counts, with timing segregated so it can be stripped; and every
//! emitted `BENCH_*.json` must round-trip through the versioned
//! [`BenchReport`] schema.

use spider_bench::{bench_matrix, run_bench, BenchReport, BENCH_SCHEMA_VERSION};

#[test]
fn bench_results_are_byte_identical_across_runs_and_worker_counts() {
    let a = run_bench(&bench_matrix(true), "smoke", 1, 1);
    let b = run_bench(&bench_matrix(true), "smoke", 1, 1);
    let c = run_bench(&bench_matrix(true), "smoke", 1, 4);

    let sa = a.stripped_json();
    let sb = b.stripped_json();
    let sc = c.stripped_json();
    assert_eq!(sa, sb, "bench results must not vary run to run");
    assert_eq!(sa, sc, "bench results must not depend on the worker count");

    // Timing is genuinely segregated: the full JSON differs (wall-clock
    // moves), the stripped JSON does not mention it at all.
    assert!(!sa.contains("\"timing\""), "stripped JSON must drop timing");
    assert!(
        !sa.contains("wall_ms"),
        "stripped JSON must drop wall times"
    );
}

#[test]
fn bench_report_json_round_trips_through_versioned_schema() {
    let report = run_bench(&bench_matrix(true), "smoke", 1, 2);
    let json = report.to_json();
    let back = match BenchReport::from_json(&json) {
        Ok(r) => r,
        Err(e) => panic!("BENCH_*.json must parse back: {e}"),
    };
    assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
    assert_eq!(back.results, report.results);
    assert_eq!(back.timing.jobs, 2);

    // A future schema version is rejected, not silently misread.
    let bumped = json.replacen(
        &format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"),
        &format!("\"schema_version\": {}", BENCH_SCHEMA_VERSION + 1),
        1,
    );
    assert!(
        bumped != json,
        "schema_version field must appear in the serialized report"
    );
    assert!(
        BenchReport::from_json(&bumped).is_err(),
        "future schema versions must be rejected"
    );
}
