//! Telemetry integration tests: trace/report reconciliation, JSONL file
//! round-trips, grid trace determinism, and the disabled-is-free guarantee
//! (a telemetry-off report serializes byte-identically to pre-telemetry
//! builds, pinned by `tests/fixtures/simreport_pre_pr.json`).

use spider::prelude::*;
use spider::telemetry::{count_by_kind, parse_jsonl};
use spider_bench::{
    run_grid_traced, run_scheme, run_scheme_traced, ExperimentConfig, GridConfig, SchemeChoice,
};

fn small_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::isp_quick();
    cfg.num_transactions = 500;
    cfg.duration = 20.0;
    cfg
}

fn kind_count(counts: &[(String, u64)], kind: &str) -> u64 {
    counts
        .iter()
        .find(|(k, _)| k == kind)
        .map(|&(_, n)| n)
        .unwrap_or(0)
}

#[test]
fn trace_events_reconcile_with_report_counters() {
    // Starved capacity so the run exercises abandonment too.
    let mut cfg = small_config();
    cfg.capacity = 300.0;
    let tel = Telemetry::enabled();
    let report = run_scheme_traced(&cfg, SchemeChoice::SpiderWaterfilling, &tel);
    let counts = count_by_kind(&tel.events());

    assert_eq!(
        kind_count(&counts, "payment_arrived"),
        report.attempted as u64
    );
    assert_eq!(
        kind_count(&counts, "payment_completed"),
        report.completed as u64
    );
    assert_eq!(
        kind_count(&counts, "payment_abandoned"),
        report.abandoned as u64
    );
    assert_eq!(kind_count(&counts, "unit_sent"), report.units_sent);
    assert!(report.abandoned > 0, "starved run should abandon payments");
    assert!(
        report.completed > 0,
        "starved run should still complete some"
    );

    // The embedded summary agrees with the raw event stream, and the
    // metrics registry agrees with both.
    let summary = report.telemetry.as_ref().expect("telemetry was enabled");
    assert_eq!(summary.events, tel.events().len() as u64);
    assert_eq!(
        summary.event_count("payment_arrived"),
        report.attempted as u64
    );
    assert_eq!(
        summary.metrics.counter("sim.units.sent", ""),
        Some(report.units_sent)
    );
    assert_eq!(
        summary.metrics.counter("sim.payments.completed", ""),
        Some(report.completed as u64)
    );
    assert!(!summary.network_series.is_empty(), "channel sampling ran");

    // Percentiles come from the completion-delay histogram and bracket the
    // mean of a successful run.
    let p = report
        .completion_delay_percentiles
        .expect("completed payments produce percentiles");
    assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
    assert!(p.p50 > 0.0);
}

#[test]
fn trace_jsonl_round_trips_through_a_file() {
    let cfg = small_config();
    let tel = Telemetry::enabled();
    let report = run_scheme_traced(&cfg, SchemeChoice::ShortestPath, &tel);

    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("telemetry_trace.jsonl");
    std::fs::write(&path, tel.trace_jsonl()).expect("write trace");
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let events = parse_jsonl(&text).expect("written trace parses");

    assert_eq!(
        events,
        tel.events(),
        "file round-trip preserves every event"
    );
    let counts = count_by_kind(&events);
    assert_eq!(
        kind_count(&counts, "payment_arrived"),
        report.attempted as u64
    );
    assert_eq!(kind_count(&counts, "unit_sent"), report.units_sent);
    assert_eq!(
        kind_count(&counts, "unit_settled") + kind_count(&counts, "unit_refunded"),
        report.units_sent,
        "every sent unit must settle or refund within this window"
    );
}

#[test]
fn queued_engine_traces_reconcile_and_record_queue_depths() {
    use spider::core::{Amount, NodeId, PaymentId};

    // Second hop starts empty toward node 2: units are admitted at the
    // source and must wait in router 1's queue for opposing traffic.
    let mut g = spider::core::Network::new(3);
    g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
        .unwrap();
    g.add_channel_with_balances(NodeId(1), NodeId(2), Amount::ZERO, Amount::from_whole(50))
        .unwrap();
    let tx = |id, src, dst, amount, arrival| Transaction {
        id: PaymentId(id),
        src: NodeId(src),
        dst: NodeId(dst),
        amount: Amount::from_whole(amount),
        arrival,
    };
    let txs = vec![tx(0, 0, 2, 20, 0.1), tx(1, 2, 0, 20, 1.0)];
    let mut cfg = QueuedConfig::new(30.0);
    cfg.deadline = 20.0;
    cfg.telemetry = Telemetry::enabled();
    let out = run_queued(&g, &txs, &cfg);

    let counts = count_by_kind(&cfg.telemetry.events());
    assert_eq!(
        kind_count(&counts, "payment_arrived"),
        out.report.attempted as u64
    );
    assert_eq!(
        kind_count(&counts, "payment_completed"),
        out.report.completed as u64
    );
    assert_eq!(kind_count(&counts, "unit_sent"), out.report.units_sent);
    assert_eq!(
        kind_count(&counts, "unit_queued"),
        out.queues.units_queued as u64
    );
    assert!(out.queues.units_queued > 0, "scenario must exercise queues");

    // Channel samples report real queue depths while units wait.
    let max_sampled_depth = cfg
        .telemetry
        .events()
        .iter()
        .filter_map(|e| match e {
            spider::telemetry::TraceEvent::ChannelSample { queue_depth, .. } => Some(*queue_depth),
            _ => None,
        })
        .max()
        .expect("sampling ran");
    assert!(max_sampled_depth > 0, "queue depth must appear in samples");
}

#[test]
fn disabled_telemetry_report_is_byte_identical_to_pre_pr_fixture() {
    let cfg = small_config();
    let report = run_scheme(&cfg, SchemeChoice::ShortestPath);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let fixture = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/simreport_pre_pr.json"
    ))
    .expect("fixture exists");
    assert_eq!(
        json.trim(),
        fixture.trim(),
        "telemetry-off reports must serialize exactly as before the telemetry layer"
    );
}

#[test]
fn grid_traces_are_byte_identical_at_any_worker_count() {
    let mut base = small_config();
    base.num_transactions = 200;
    base.duration = 10.0;
    let mut grid = GridConfig::new(base);
    grid.schemes = vec![SchemeChoice::ShortestPath, SchemeChoice::SpiderWaterfilling];
    grid.trials = 2;
    grid.telemetry = true;

    let (serial, serial_traces) = run_grid_traced(&grid, 1).unwrap();
    let (parallel, parallel_traces) = run_grid_traced(&grid, 4).unwrap();

    assert_eq!(serial_traces.len(), 4);
    assert_eq!(
        serial_traces, parallel_traces,
        "per-cell trace bytes must not depend on the worker count"
    );
    assert_eq!(
        serial.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "grid result JSON must not depend on the worker count"
    );
    for trace in &serial_traces {
        let events = parse_jsonl(trace).expect("cell traces parse");
        assert!(!events.is_empty(), "telemetry-on cells must trace events");
    }
}
