//! End-to-end: all six schemes of the paper on a small ISP workload with
//! the ledger auditor enabled — sane success ratios, exact accounting, and
//! zero invariant violations.

use spider_bench::{run_grid, ExperimentConfig, GridConfig, SchemeChoice};

#[test]
fn all_six_schemes_run_audited_on_the_isp_topology() {
    let mut base = ExperimentConfig::isp_quick();
    base.num_transactions = 500;
    base.duration = 20.0;
    let grid = GridConfig {
        base,
        schemes: SchemeChoice::ALL.to_vec(),
        capacities: vec![],
        trials: 1,
        audit: true,
        telemetry: false,
        faults: None,
        outage_rates: Vec::new(),
    };
    let result = run_grid(&grid, 2).unwrap();

    assert_eq!(result.summaries.len(), SchemeChoice::ALL.len());
    assert_eq!(result.cells.len(), SchemeChoice::ALL.len());
    assert_eq!(
        result.total_audit_violations(),
        0,
        "ledger invariants must hold"
    );

    for s in &result.summaries {
        assert!(s.audit_checks > 0, "{}: auditor never ran", s.scheme_name);
        assert_eq!(s.audit_violations, 0, "{}: audit violations", s.scheme_name);
        assert!(
            s.success_ratio.mean > 0.1 && s.success_ratio.mean <= 1.0,
            "{}: implausible success ratio {}",
            s.scheme_name,
            s.success_ratio.mean
        );
        assert!(
            s.success_volume.mean > 0.05 && s.success_volume.mean <= 1.0,
            "{}: implausible success volume {}",
            s.scheme_name,
            s.success_volume.mean
        );
    }

    for c in &result.cells {
        let r = &c.report;
        assert!(
            r.attempted >= 450,
            "{}: attempted only {}",
            r.scheme,
            r.attempted
        );
        assert_eq!(
            r.completed + r.abandoned + r.pending_at_end,
            r.attempted,
            "{}: payment accounting must add up",
            r.scheme
        );
        assert!(r.delivered_volume <= r.attempted_volume + 1e-6);
        assert!(r.audit_checks > 0 && r.audit_violations.is_empty());
    }
}
