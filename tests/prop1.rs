//! Property-based validation of Proposition 1 and the optimization stack,
//! across random demands and topologies.

use proptest::prelude::*;
use spider_core::{Amount, DemandMatrix, NodeId};
use spider_opt::circulation::{decompose, peel_cycles, route_on_spanning_tree};
use spider_opt::fluid::{enumerate_demand_paths, FluidProblem};
use spider_topology::{erdos_renyi, ring};
use spider_workload::{mixed_demand, random_circulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decompose() always splits demand into a balanced circulation plus a
    /// remainder that exactly accounts for the rest.
    #[test]
    fn decomposition_is_exact_partition(
        n in 4usize..12,
        frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let demand = mixed_demand(n, 50.0, frac, seed);
        let dec = decompose(&demand);
        prop_assert!(dec.circulation.is_circulation(1e-6));
        for (s, d, r) in demand.entries() {
            let sum = dec.circulation.rate(s, d) + dec.dag.rate(s, d);
            prop_assert!((sum - r).abs() < 1e-5, "{s}->{d}: {sum} != {r}");
        }
        // ν(C*) ≥ the constructed circulation share (the mix may create
        // extra cycles, never destroy them).
        prop_assert!(dec.value >= 50.0 * frac - 1e-4);
    }

    /// The converse half of Proposition 1: no balanced LP routing on any
    /// topology can beat ν(C*).
    #[test]
    fn balanced_lp_never_exceeds_circulation(
        n in 4usize..8,
        frac in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let demand = mixed_demand(n, 20.0, frac, seed);
        let dec = decompose(&demand);
        let network = erdos_renyi(n, 0.5, Amount::from_tokens(1e9), seed);
        let paths = enumerate_demand_paths(&network, &demand, 4);
        let sol = FluidProblem::new(&network, &demand, &paths, 1.0)
            .max_balanced_throughput();
        prop_assert!(
            sol.throughput <= dec.value + 1e-4,
            "LP {} exceeded ν(C*) {}",
            sol.throughput,
            dec.value
        );
    }

    /// The constructive half of Proposition 1: routing a circulation on a
    /// spanning tree is perfectly balanced on every channel.
    #[test]
    fn spanning_tree_routing_balances_circulations(
        n in 4usize..12,
        cycles in 1usize..6,
        seed in 0u64..500,
    ) {
        let circ = random_circulation(n, cycles, 0.5, 2.0, seed);
        let network = erdos_renyi(n, 0.4, Amount::from_tokens(1e9), seed ^ 77);
        let flows = route_on_spanning_tree(&network, &circ)
            .expect("erdos_renyi graphs are connected");
        for (i, &(ab, ba)) in flows.iter().enumerate() {
            prop_assert!(
                (ab - ba).abs() < 1e-6,
                "channel {i} imbalanced: {ab} vs {ba}"
            );
        }
    }

    /// Cycle peeling fully accounts for a circulation's mass.
    #[test]
    fn peeling_conserves_mass(
        n in 4usize..10,
        cycles in 1usize..5,
        seed in 0u64..500,
    ) {
        let circ = random_circulation(n, cycles, 0.5, 2.0, seed);
        let peeled = peel_cycles(&circ);
        let mut rebuilt = DemandMatrix::new();
        for (nodes, rate) in &peeled {
            for i in 0..nodes.len() {
                rebuilt.add(nodes[i], nodes[(i + 1) % nodes.len()], *rate);
            }
        }
        for (s, d, r) in circ.entries() {
            prop_assert!((rebuilt.rate(s, d) - r).abs() < 1e-4);
        }
    }

    /// On a ring, a one-directional ring circulation saturates; the LP
    /// finds it (sanity against a known-optimal instance).
    #[test]
    fn ring_circulation_fully_routable(n in 4usize..9, raw_rate in 0.5f64..5.0) {
        // Quantize to micro-units; decompose() works at that resolution.
        let rate = Amount::from_tokens(raw_rate).as_tokens();
        let mut demand = DemandMatrix::new();
        for i in 0..n as u32 {
            demand.set(NodeId(i), NodeId((i + 1) % n as u32), rate);
        }
        let network = ring(n, Amount::from_tokens(1e9));
        let paths = enumerate_demand_paths(&network, &demand, 2);
        let sol = FluidProblem::new(&network, &demand, &paths, 1.0)
            .max_balanced_throughput();
        // A pure directed ring *cannot* be balanced-routed on the ring
        // alone without the counter-flow... but the reverse ring paths
        // exist in the path set, enabling balance. The optimum equals the
        // circulation value (all of it).
        let dec = decompose(&demand);
        prop_assert!((dec.value - rate * n as f64).abs() < 1e-6);
        prop_assert!(sol.throughput <= dec.value + 1e-6);
    }
}

/// Deterministic regression: the paper's worked example (kept out of
/// proptest so its exact values pin down).
#[test]
fn fig4_decomposition_pins_exact_values() {
    let demand = DemandMatrix::fig4_example();
    let dec = decompose(&demand);
    assert_eq!(dec.value, 8.0);
    assert_eq!(dec.dag.total(), 4.0);
    let cycles = peel_cycles(&dec.circulation);
    let mass: f64 = cycles.iter().map(|(nodes, r)| nodes.len() as f64 * r).sum();
    assert!((mass - 8.0).abs() < 1e-6);
}
