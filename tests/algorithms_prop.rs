//! Property-based cross-validation of the algorithmic substrates against
//! brute-force oracles on small random instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spider::core::{Amount, Network, NodeId};
use spider::opt::simplex::{LinearProgram, LpOutcome, Relation};
use spider::opt::FlowNetwork;
use spider::routing::{edge_disjoint_paths, k_shortest_paths, shortest_path};
use spider::sim::UnitPacket;

/// A connected random network with `n` nodes and edge probability `p`.
fn random_network(n: usize, p: f64, seed: u64) -> Network {
    spider::topology::erdos_renyi(n, p, Amount::from_whole(10), seed)
}

/// Brute-force: all simple-path hop counts between two nodes via DFS.
fn all_simple_path_lengths(g: &Network, src: NodeId, dst: NodeId) -> Vec<usize> {
    fn dfs(
        g: &Network,
        dst: NodeId,
        node: NodeId,
        visited: &mut Vec<bool>,
        depth: usize,
        out: &mut Vec<usize>,
    ) {
        if node == dst {
            out.push(depth);
            return;
        }
        for &(v, _) in g.neighbors(node) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                dfs(g, dst, v, visited, depth + 1, out);
                visited[v.index()] = false;
            }
        }
    }
    let mut visited = vec![false; g.num_nodes()];
    visited[src.index()] = true;
    let mut out = Vec::new();
    dfs(g, dst, src, &mut visited, 0, &mut out);
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yen's k-shortest agrees with brute-force enumeration of simple-path
    /// lengths on small graphs.
    #[test]
    fn yen_matches_brute_force(seed in 0u64..300, n in 4usize..8) {
        let g = random_network(n, 0.45, seed);
        let (src, dst) = (NodeId(0), NodeId(n as u32 - 1));
        let oracle = all_simple_path_lengths(&g, src, dst);
        let k = 4usize;
        let yen = k_shortest_paths(&g, src, dst, k);
        // Same number of paths (up to k)...
        prop_assert_eq!(yen.len(), oracle.len().min(k));
        // ...with exactly the k smallest lengths.
        let yen_lens: Vec<usize> = yen.iter().map(|p| p.len()).collect();
        prop_assert_eq!(&yen_lens[..], &oracle[..yen.len()]);
        // And every returned path is loopless (distinct nodes).
        for p in &yen {
            let mut nodes = p.nodes().to_vec();
            nodes.sort_unstable();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), p.nodes().len());
        }
    }

    /// BFS shortest path matches the minimum of the brute-force set.
    #[test]
    fn bfs_matches_brute_force_minimum(seed in 0u64..300, n in 4usize..8) {
        let g = random_network(n, 0.4, seed);
        let (src, dst) = (NodeId(1), NodeId(n as u32 - 1));
        let oracle = all_simple_path_lengths(&g, src, dst);
        let bfs = shortest_path(&g, src, dst);
        match (oracle.first(), bfs) {
            (Some(&min), Some(p)) => prop_assert_eq!(p.len(), min),
            (None, None) => {}
            (a, b) => prop_assert!(false, "oracle {a:?} vs bfs {b:?}"),
        }
    }

    /// Edge-disjoint paths: pairwise disjoint, valid, non-decreasing length.
    #[test]
    fn edge_disjoint_properties(seed in 0u64..300, n in 4usize..9, k in 1usize..5) {
        let g = random_network(n, 0.5, seed);
        let paths = edge_disjoint_paths(&g, NodeId(0), NodeId(n as u32 - 1), k);
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].len() <= w[1].len(), "greedy lengths must not decrease");
        }
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                for &(c, _) in paths[i].hops() {
                    prop_assert!(!paths[j].uses_channel(c));
                }
            }
        }
    }

    /// Max-flow equals brute-force min-cut on small directed networks.
    #[test]
    fn maxflow_equals_min_cut(seed in 0u64..400, n in 3usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut caps = vec![vec![0i64; n]; n];
        let mut f = FlowNetwork::new(n);
        for (u, row) in caps.iter_mut().enumerate() {
            for (v, cap) in row.iter_mut().enumerate() {
                if u != v && rng.random_bool(0.5) {
                    let c = rng.random_range(1..10i64);
                    *cap = c;
                    f.add_edge(u, v, c);
                }
            }
        }
        let (s, t) = (0, n - 1);
        let flow = f.max_flow(s, t, i64::MAX);
        // Brute-force min cut over all vertex subsets containing s, not t.
        let mut min_cut = i64::MAX;
        for mask in 0..(1u32 << n) {
            if mask & 1 == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let mut cut = 0;
            for (u, row) in caps.iter().enumerate() {
                for (v, &c) in row.iter().enumerate() {
                    if mask & (1 << u) != 0 && mask & (1 << v) == 0 {
                        cut += c;
                    }
                }
            }
            min_cut = min_cut.min(cut);
        }
        prop_assert_eq!(flow, min_cut, "max-flow/min-cut mismatch");
    }

    /// Simplex agrees with brute-force vertex enumeration on random 2-D LPs.
    #[test]
    fn simplex_matches_vertex_enumeration(
        seed in 0u64..500,
        m in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // maximize c·x over {x, y >= 0, a_i x + b_i y <= r_i}.
        let c = [rng.random_range(0.1..2.0), rng.random_range(0.1..2.0)];
        let mut rows: Vec<[f64; 3]> = Vec::new();
        for _ in 0..m {
            rows.push([
                rng.random_range(0.1..2.0),
                rng.random_range(0.1..2.0),
                rng.random_range(1.0..10.0),
            ]);
        }
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, c[0]), (1, c[1])]);
        for r in &rows {
            lp.add_constraint(&[(0, r[0]), (1, r[1])], Relation::Le, r[2]);
        }
        let sol = match lp.solve() {
            LpOutcome::Optimal(s) => s,
            other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        };
        // Vertex enumeration: intersections of every pair of constraint
        // lines (plus the axes), filtered for feasibility.
        let mut lines: Vec<[f64; 3]> = rows.clone();
        lines.push([1.0, 0.0, 0.0]); // x = 0
        lines.push([0.0, 1.0, 0.0]); // y = 0
        let feasible = |x: f64, y: f64| -> bool {
            x >= -1e-9
                && y >= -1e-9
                && rows.iter().all(|r| r[0] * x + r[1] * y <= r[2] + 1e-9)
        };
        let mut best = f64::NEG_INFINITY;
        for i in 0..lines.len() {
            for j in i + 1..lines.len() {
                let det = lines[i][0] * lines[j][1] - lines[j][0] * lines[i][1];
                if det.abs() < 1e-12 {
                    continue;
                }
                let x = (lines[i][2] * lines[j][1] - lines[j][2] * lines[i][1]) / det;
                let y = (lines[i][0] * lines[j][2] - lines[j][0] * lines[i][2]) / det;
                if feasible(x, y) {
                    best = best.max(c[0] * x + c[1] * y);
                }
            }
        }
        prop_assert!(
            (sol.objective - best).abs() < 1e-6,
            "simplex {} vs oracle {}",
            sol.objective,
            best
        );
    }

    /// Wire packets round-trip for arbitrary contents.
    #[test]
    fn wire_round_trip(
        payment in any::<u64>(),
        seq in any::<u32>(),
        micros in 0i64..1_000_000_000_000,
        expiry in any::<u64>(),
        hops in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..16),
    ) {
        use spider::sim::{HopHeader, HashLock};
        use spider::core::{PaymentId, UnitId};
        let packet = UnitPacket {
            unit: UnitId { payment: PaymentId(payment), seq },
            amount: Amount::from_micros(micros),
            lock: HashLock::derive(UnitId { payment: PaymentId(payment), seq }),
            expiry_ms: expiry,
            route: hops
                .into_iter()
                .map(|(next, fee)| HopHeader { next: NodeId(next), fee_micros: fee })
                .collect(),
        };
        let decoded = UnitPacket::decode(&packet.encode()).expect("round trip");
        prop_assert_eq!(decoded, packet);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = UnitPacket::decode(&bytes);
    }
}
