//! End-to-end fault injection: grids run under channel outages and node
//! churn stay byte-identical at any worker count, the ledger auditor finds
//! nothing, and sender-side retry + blacklisting measurably recovers
//! success ratio versus retries disabled.

use spider_bench::{run_grid, ExperimentConfig, GridConfig, SchemeChoice};
use spider_sim::FaultConfig;

fn fault_grid(retry: bool) -> GridConfig {
    let mut base = ExperimentConfig::isp_quick();
    base.num_transactions = 400;
    base.duration = 15.0;
    let mut faults = FaultConfig {
        channel_outage_rate: 1.0,
        outage_duration: 2.0,
        node_churn_rate: 0.2,
        node_downtime: 2.0,
        ..FaultConfig::default()
    };
    if !retry {
        faults.retry = None;
    }
    GridConfig {
        base,
        schemes: vec![SchemeChoice::ShortestPath, SchemeChoice::SpiderWaterfilling],
        capacities: vec![],
        trials: 2,
        audit: true,
        telemetry: false,
        faults: Some(faults),
        outage_rates: Vec::new(),
    }
}

#[test]
fn fault_grid_is_byte_identical_at_any_worker_count() {
    let config = fault_grid(true);
    let serial = run_grid(&config, 1).unwrap();
    let parallel = run_grid(&config, 4).unwrap();
    assert_eq!(
        serial.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "fault-injected grid output must not depend on --jobs"
    );
    assert_eq!(
        serial.total_audit_violations(),
        0,
        "ledger invariants must hold under faults"
    );
    for c in &serial.cells {
        let r = &c.report;
        let stats = r.faults.expect("fault runs report stats");
        assert!(stats.outages > 0, "{}: no outages fired", r.scheme);
        assert!(r.audit_checks > 0 && r.audit_violations.is_empty());
        assert_eq!(
            r.completed + r.abandoned + r.pending_at_end,
            r.attempted,
            "{}: payment accounting must add up under faults",
            r.scheme
        );
        assert!(r.delivered_volume <= r.attempted_volume + 1e-6);
    }
}

#[test]
fn retry_and_blacklisting_recover_success_ratio() {
    let with_retry = run_grid(&fault_grid(true), 4).unwrap();
    let without = run_grid(&fault_grid(false), 4).unwrap();
    assert_eq!(with_retry.total_audit_violations(), 0);
    assert_eq!(without.total_audit_violations(), 0);

    // Same schemes, same workload, same fault schedules (the plan seed is
    // derived from the cell seed, which does not depend on the retry
    // policy) — only the sender's recovery behaviour differs.
    let mean = |r: &spider_bench::GridResult| {
        r.summaries
            .iter()
            .map(|s| s.success_ratio.mean)
            .sum::<f64>()
            / r.summaries.len() as f64
    };
    let recovered = mean(&with_retry);
    let abandoned = mean(&without);
    assert!(
        recovered > abandoned + 0.02,
        "retry must measurably recover success ratio: with={recovered:.3} without={abandoned:.3}"
    );
    for (a, b) in with_retry.summaries.iter().zip(&without.summaries) {
        assert_eq!(a.scheme, b.scheme);
        let retried: u64 = with_retry
            .cells
            .iter()
            .filter_map(|c| c.report.faults.as_ref())
            .map(|s| s.retries)
            .sum();
        assert!(retried > 0, "retry runs must actually retry");
    }
}

#[test]
fn outage_rate_sweep_produces_degradation_curve() {
    let mut config = fault_grid(true);
    config.schemes = vec![SchemeChoice::SpiderWaterfilling];
    config.outage_rates = vec![0.0, 2.0];
    let result = run_grid(&config, 2).unwrap();
    assert_eq!(result.summaries.len(), 2);
    assert_eq!(result.summaries[0].outage_rate, Some(0.0));
    assert_eq!(result.summaries[1].outage_rate, Some(2.0));
    assert_eq!(result.total_audit_violations(), 0);
    let clean = result.summaries[0].success_ratio.mean;
    let faulty = result.summaries[1].success_ratio.mean;
    assert!(
        clean >= faulty,
        "outages cannot improve success: clean={clean:.3} faulty={faulty:.3}"
    );
    // Rate 0 must genuinely disable outages.
    for c in &result.cells {
        let stats = c.report.faults.expect("stats present");
        if c.cell.outage_rate == Some(0.0) {
            assert_eq!(stats.outages, 0, "rate 0 still produced outages");
        } else {
            assert!(stats.outages > 0, "rate 2.0 produced no outages");
        }
    }
}
