//! Fixture-equivalence lockdown for the dense-state refactor.
//!
//! `tests/fixtures/fig6_pre_pr.json` holds the full fig6 report set (all six
//! schemes) produced by the map-keyed build immediately before the dense
//! refactor. The refactor is behavior-preserving, so the dense engines must
//! reproduce every report **field by field** — any divergence names the
//! exact scheme and JSON field that moved.

use serde_json::Value;
use spider_bench::{fig6, ExperimentConfig};

fn fixture_config() -> ExperimentConfig {
    // Must match the capture config used to record the fixture.
    let mut cfg = ExperimentConfig::isp_quick();
    cfg.num_transactions = 1_000;
    cfg.duration = 20.0;
    cfg.seed = 7;
    cfg
}

/// Recursively diffs two JSON values, collecting the dotted path of every
/// leaf that differs.
fn diff_json(path: &str, pre: &Value, post: &Value, out: &mut Vec<String>) {
    match (pre, post) {
        (Value::Object(a), Value::Object(b)) => {
            for (key, x) in a {
                let p = format!("{path}.{key}");
                match post.get_field(key) {
                    Some(y) => diff_json(&p, x, y, out),
                    None => out.push(format!("{p}: missing in post-refactor report")),
                }
            }
            for (key, _) in b {
                if pre.get_field(key).is_none() {
                    out.push(format!("{path}.{key}: new field absent from fixture"));
                }
            }
        }
        (Value::Array(a), Value::Array(b)) => {
            if a.len() != b.len() {
                out.push(format!("{path}: length {} vs {}", a.len(), b.len()));
            }
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                diff_json(&format!("{path}[{i}]"), x, y, out);
            }
        }
        _ => {
            if pre != post {
                out.push(format!("{path}: {pre:?} vs {post:?}"));
            }
        }
    }
}

#[test]
fn fig6_reports_match_pre_refactor_fixture_field_by_field() {
    let fixture_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/fig6_pre_pr.json"
    ))
    .expect("fixture exists");
    let pre: Vec<Value> = serde_json::from_str(&fixture_text).expect("fixture parses");

    let reports = fig6(&fixture_config());
    assert_eq!(
        pre.len(),
        reports.len(),
        "scheme count changed: the fixture has {} reports",
        pre.len()
    );

    let mut diffs = Vec::new();
    for (pre_report, report) in pre.iter().zip(&reports) {
        let scheme = match pre_report.get_field("scheme") {
            Some(Value::Str(s)) => s.clone(),
            _ => String::from("?"),
        };
        let post = serde_json::to_value(report).expect("report serializes");
        diff_json(&scheme, pre_report, &post, &mut diffs);
    }
    assert!(
        diffs.is_empty(),
        "dense engines diverged from the pre-refactor build on {} field(s):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

/// The same scenario run twice in-process stays identical — the dense
/// structures introduce no run-to-run nondeterminism.
#[test]
fn fig6_reports_are_run_to_run_identical() {
    let cfg = fixture_config();
    let a = fig6(&cfg);
    let b = fig6(&cfg);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "fig6 must be deterministic"
    );
}
