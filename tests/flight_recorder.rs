//! Flight-recorder lockdown: the compact binary trace format and the
//! per-shard observability layer.
//!
//! - JSONL → binary → JSONL is lossless for arbitrary event streams
//!   (proptest over synthetic traces covering every event kind and the
//!   timestamp/amount encodings).
//! - Indexed channel/node/payment/window queries against the binary format
//!   return exactly what a brute-force scan of the JSONL returns, on a real
//!   Fig. 6 trace — and the index actually skips blocks.
//! - Binary traces are byte-identical across `--jobs` worker counts and
//!   across shard counts (1 vs 4), with fault injection active.
//! - `run_sharded` reports expose per-shard epoch metrics, and profiled
//!   runs add barrier-wait histograms.

use proptest::prelude::*;
use spider::prelude::*;
use spider::sim::{FaultConfig, FaultPlan, ShardedConfig};
use spider::telemetry::bintrace::{self, jsonl_to_bintrace, query, query_with_stats, TraceQuery};
use spider::telemetry::{events_to_jsonl, parse_jsonl, TraceEvent};
use spider::workload::{generate, isp_sizes, TraceConfig};
use spider_bench::{
    run_grid_traced, run_scheme_traced, ExperimentConfig, GridConfig, SchemeChoice,
};

// ---------------------------------------------------------------------------
// Lossless round-trip (satellite: proptest JSONL -> binary -> JSONL).
// ---------------------------------------------------------------------------

/// Deterministic xorshift so event streams are a pure function of the seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// A finite f64 drawn from the encodings the writer specializes:
    /// whole numbers, centi/micro fixed-point, raw doubles, and the
    /// signed-zero edge case.
    fn amount(&mut self) -> f64 {
        match self.next() % 6 {
            0 => (self.next() % 100_000) as f64,
            1 => (self.next() % 1_000_000) as f64 / 100.0,
            2 => (self.next() % 1_000_000) as f64 / 1e6,
            3 => -((self.next() % 10_000) as f64 / 100.0),
            4 => -0.0,
            _ => f64::from_bits(0x3FF0_0000_0000_0000 | (self.next() & 0x000F_FFFF_FFFF_FFFF)),
        }
    }
}

/// Builds a synthetic trace of `n` events covering every kind, with
/// mostly-monotonic timestamps and deliberate repeats (the `F64_PREV` tag).
fn synthetic_events(seed: u64, n: usize) -> Vec<TraceEvent> {
    let mut g = Gen(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // Repeat the previous timestamp about a third of the time, the way
        // settle bursts do in real traces.
        if !g.next().is_multiple_of(3) {
            t += (g.next() % 1000) as f64 / 100.0;
        }
        let payment = g.next() % 500;
        let channel = (g.next() % 64) as u32;
        let node = (g.next() % 32) as u32;
        let amount = g.amount();
        let e = match i % 19 {
            0 => TraceEvent::PaymentArrived {
                t,
                payment,
                src: node,
                dst: (node + 1) % 32,
                amount,
            },
            1 => TraceEvent::PaymentSplit {
                t,
                payment,
                units: g.next() % 40,
            },
            2 => TraceEvent::UnitSent {
                t,
                payment,
                amount,
                hops: (g.next() % 6) as u32,
            },
            3 => TraceEvent::UnitSettled { t, payment, amount },
            4 => TraceEvent::UnitRefunded { t, payment, amount },
            5 => TraceEvent::UnitQueued {
                t,
                payment,
                channel,
                depth: (g.next() % 100) as u32,
            },
            6 => TraceEvent::PaymentCompleted {
                t,
                payment,
                delay: g.amount().abs(),
            },
            7 => TraceEvent::PaymentAbandoned {
                t,
                payment,
                delivered: amount,
            },
            8 => TraceEvent::RebalanceApplied {
                t,
                channel,
                moved: amount,
                fee: g.amount().abs(),
            },
            9 => TraceEvent::ChannelSample {
                t,
                channel,
                imbalance: (g.next() % 1000) as f64 / 1000.0,
                inflight: amount,
                queue_depth: (g.next() % 50) as u32,
            },
            10 => TraceEvent::ChannelOutage { t, channel },
            11 => TraceEvent::ChannelRecovered { t, channel },
            12 => TraceEvent::NodeCrashed { t, node },
            13 => TraceEvent::NodeRecovered { t, node },
            14 => TraceEvent::UnitDropped {
                t,
                payment,
                amount,
                channel,
            },
            15 => TraceEvent::UnitGriefed {
                t,
                payment,
                amount,
                hold: (g.next() % 500) as f64 / 10.0,
            },
            16 => TraceEvent::PaymentRetry {
                t,
                payment,
                attempt: (g.next() % 8) as u32,
                backoff: g.amount().abs(),
            },
            17 => TraceEvent::ChannelBlacklisted {
                t,
                channel,
                until: t + g.amount().abs(),
            },
            _ => TraceEvent::SolverSample {
                iter: 1 + g.next() % 100,
                objective: amount,
                residual: g.amount().abs(),
                mean_price: g.amount(),
            },
        };
        out.push(e);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// JSONL -> binary -> JSONL reproduces the input byte for byte, and
    /// decode(encode(events)) reproduces the events structurally.
    #[test]
    fn bintrace_round_trip_is_lossless(seed in any::<u64>(), n in 1usize..400) {
        let events = synthetic_events(seed, n);
        let jsonl = events_to_jsonl(&events);

        let bin = jsonl_to_bintrace(&jsonl)
            .map_err(|(line, e)| TestCaseError::fail(format!("line {line}: {e}")))?;
        let back = bintrace::bintrace_to_jsonl(&bin)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&back, &jsonl, "JSONL round-trip must be byte-lossless");

        let decoded = bintrace::decode(&bintrace::encode(&events))
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(decoded, events, "event round-trip must be exact");
    }
}

// ---------------------------------------------------------------------------
// Indexed query == brute-force scan, on a real Fig. 6 trace.
// ---------------------------------------------------------------------------

fn fig6_small_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::isp_quick();
    cfg.num_transactions = 800;
    cfg.duration = 30.0;
    cfg
}

#[test]
fn indexed_queries_match_brute_force_scan_on_fig6_trace() {
    let cfg = fig6_small_config();
    let tel = Telemetry::enabled();
    run_scheme_traced(&cfg, SchemeChoice::SpiderWaterfilling, &tel);
    let events = tel.events();
    assert!(!events.is_empty(), "fig6 scenario must trace events");
    let jsonl = events_to_jsonl(&events);
    let bin = bintrace::encode(&events);

    // The acceptance compression bound: the binary format must stay at
    // least 5x smaller than the JSONL of the same trace.
    assert!(
        bin.len() * 5 <= jsonl.len(),
        "binary trace too large: {} bytes vs {} bytes JSONL",
        bin.len(),
        jsonl.len()
    );

    let queries = [
        TraceQuery {
            channel: Some(3),
            ..TraceQuery::default()
        },
        TraceQuery {
            node: Some(5),
            ..TraceQuery::default()
        },
        TraceQuery {
            payment: Some(17),
            ..TraceQuery::default()
        },
        TraceQuery {
            kind: Some("unit_settled".to_string()),
            from: Some(5.0),
            to: Some(20.0),
            ..TraceQuery::default()
        },
        TraceQuery {
            channel: Some(8),
            from: Some(10.0),
            to: Some(15.0),
            ..TraceQuery::default()
        },
        TraceQuery {
            from: Some(2.0),
            to: Some(4.0),
            ..TraceQuery::default()
        },
    ];
    let scanned = parse_jsonl(&jsonl).expect("trace parses");
    assert_eq!(scanned, events, "JSONL scan must see the same events");
    for q in &queries {
        let indexed = query(&bin, q).expect("indexed query succeeds");
        let brute: Vec<TraceEvent> = scanned.iter().filter(|e| q.matches(e)).cloned().collect();
        assert_eq!(
            indexed, brute,
            "indexed query and brute-force scan disagree for {q:?}"
        );
    }

    // A narrow channel+window query must actually use the index: most
    // blocks are skipped without decoding.
    let narrow = TraceQuery {
        channel: Some(8),
        from: Some(10.0),
        to: Some(15.0),
        ..TraceQuery::default()
    };
    let (_, stats) = query_with_stats(&bin, &narrow).expect("query succeeds");
    assert!(
        stats.blocks_scanned < stats.blocks_total,
        "index skipped nothing: scanned {}/{} blocks",
        stats.blocks_scanned,
        stats.blocks_total
    );
}

// ---------------------------------------------------------------------------
// Binary byte-identity across worker counts and shard counts, under faults.
// ---------------------------------------------------------------------------

#[test]
fn binary_traces_are_byte_identical_across_worker_counts_under_faults() {
    let mut base = fig6_small_config();
    base.num_transactions = 200;
    base.duration = 10.0;
    let mut grid = GridConfig::new(base);
    grid.schemes = vec![SchemeChoice::ShortestPath, SchemeChoice::SpiderWaterfilling];
    grid.trials = 2;
    grid.telemetry = true;
    grid.faults = Some(FaultConfig::scenario("outages").expect("outages scenario exists"));

    let (_, serial_traces) = run_grid_traced(&grid, 1).unwrap();
    let (_, parallel_traces) = run_grid_traced(&grid, 4).unwrap();
    assert_eq!(serial_traces.len(), parallel_traces.len());
    for (i, (a, b)) in serial_traces.iter().zip(&parallel_traces).enumerate() {
        let bin_a = jsonl_to_bintrace(a).expect("cell trace converts");
        let bin_b = jsonl_to_bintrace(b).expect("cell trace converts");
        assert_eq!(
            bin_a, bin_b,
            "cell {i}: binary trace bytes depend on the worker count"
        );
    }
}

fn sharded_fault_scenario() -> (Network, Vec<Transaction>, ShardedConfig) {
    let network = spider::topology::isp_topology(Amount::from_whole(300));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 300, 15.0);
    trace_cfg.seed = 3;
    let txs = generate(&trace_cfg, &isp_sizes());
    let fault_cfg = FaultConfig::scenario("stress").expect("stress scenario exists");
    let mut cfg = ShardedConfig::new(20.0);
    cfg.record_series = true;
    cfg.faults = Some(FaultPlan::from_config(&fault_cfg, &network, 20.0));
    (network, txs, cfg)
}

fn run_sharded_bin(
    network: &Network,
    txs: &[Transaction],
    config: &ShardedConfig,
    shards: usize,
    tel: Telemetry,
) -> (SimReport, Vec<u8>) {
    let partition = if shards <= 1 {
        Partition::single(network)
    } else {
        Partition::build(network, shards, 3)
    };
    let mut cfg = config.clone();
    cfg.telemetry = tel.clone();
    let report = run_sharded(network, txs, &partition, &cfg);
    (report, bintrace::encode(&tel.events()))
}

#[test]
fn binary_traces_are_byte_identical_across_shard_counts_under_faults() {
    let (network, txs, cfg) = sharded_fault_scenario();
    let (_, bin1) = run_sharded_bin(&network, &txs, &cfg, 1, Telemetry::enabled());
    let (report4, bin4) = run_sharded_bin(&network, &txs, &cfg, 4, Telemetry::enabled());
    assert!(!bin1.is_empty() && bintrace::is_bintrace(&bin1));
    assert_eq!(
        bin1, bin4,
        "binary trace bytes diverged between 1 and 4 shards"
    );

    // Per-shard epoch metrics ride along in memory for shards >= 2 and
    // never enter the serialized report (shard-count independence).
    let obs = report4
        .shards
        .as_ref()
        .expect("sharded runs attach observability");
    assert_eq!(obs.num_shards, 4);
    assert_eq!(obs.shards.len(), 4);
    let owned: u64 = obs.shards.iter().map(|s| s.owned_payments).sum();
    assert_eq!(owned, txs.len() as u64, "every payment has one owner");
    let events: u64 = obs.shards.iter().map(|s| s.events_processed).sum();
    assert!(events > 0, "shards exchanged messages under faults");
    assert!(obs.event_imbalance >= 1.0 && obs.payment_imbalance >= 1.0);
    assert!(
        serde_json::to_string(&report4)
            .expect("report serializes")
            .find("num_shards")
            .is_none(),
        "observability must not leak into serialized reports"
    );
    assert!(!obs.render().is_empty());
}

#[test]
fn profiled_sharded_run_records_barrier_wait_histograms() {
    let (network, txs, cfg) = sharded_fault_scenario();
    let (report, _) = run_sharded_bin(&network, &txs, &cfg, 2, Telemetry::profiled());
    let obs = report.shards.as_ref().expect("observability attached");
    assert_eq!(obs.num_shards, 2);
    for shard in &obs.shards {
        let hist = shard
            .barrier_wait_ms
            .as_ref()
            .expect("profiled runs record barrier waits");
        assert!(hist.count > 0, "shard {} never waited", shard.shard);
        assert!(shard.epochs > 0);
    }
    // Unprofiled runs keep the deterministic counters but no wall-clock.
    let (plain, _) = run_sharded_bin(&network, &txs, &cfg, 2, Telemetry::enabled());
    let plain_obs = plain.shards.as_ref().expect("observability attached");
    assert!(plain_obs.shards.iter().all(|s| s.barrier_wait_ms.is_none()));
}
