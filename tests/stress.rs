//! Fault-injection and edge-case stress tests: adversarial topologies,
//! drained channels, extreme parameters — the simulator must stay sound
//! (exact conservation, clean accounting) in all of them.
//!
//! Two tiers live in this file (see EXPERIMENTS.md "Test tiers"):
//!
//! - **Tier 1** (default): the fast edge-case tests below, run on every
//!   `cargo test`.
//! - **Tier 2** (`#[ignore]`-tagged `tier2_*` tests): full-scale stress at
//!   ≥10k nodes / ≥100k payments. Run explicitly with
//!   `cargo test --release --test stress -- --ignored` — they take minutes,
//!   not seconds, and are meant for release-profile soak runs.

use spider::prelude::*;
use spider::workload::{generate, isp_sizes, ripple_sizes, ArrivalPattern, TraceConfig};

fn tx(id: u64, src: u32, dst: u32, amount: i64, arrival: f64) -> Transaction {
    Transaction {
        id: PaymentId(id),
        src: NodeId(src),
        dst: NodeId(dst),
        amount: Amount::from_whole(amount),
        arrival,
    }
}

/// Accounting identity that must hold for every report.
fn assert_sound(report: &SimReport) {
    assert_eq!(
        report.completed + report.abandoned + report.pending_at_end,
        report.attempted,
        "status accounting broken: {report:?}"
    );
    assert!(report.delivered_volume <= report.attempted_volume + 1e-6);
    assert!(report.completed_volume <= report.delivered_volume + 1e-6);
    assert!((0.0..=1.0).contains(&report.final_mean_imbalance));
}

#[test]
fn fully_drained_direction_blocks_everything() {
    // All funds on the wrong side: nothing can move, nothing must move.
    let mut g = spider::core::Network::new(2);
    g.add_channel_with_balances(NodeId(0), NodeId(1), Amount::ZERO, Amount::from_whole(100))
        .unwrap();
    let txs = vec![tx(0, 0, 1, 10, 0.1)];
    for scheme in [true, false] {
        let report = if scheme {
            spider::sim::run(
                &g,
                &txs,
                &mut ShortestPathScheme::new(),
                &SimConfig::new(5.0),
            )
        } else {
            spider::sim::run(&g, &txs, &mut MaxFlowScheme::new(), &SimConfig::new(5.0))
        };
        assert_eq!(report.delivered_volume, 0.0);
        assert_eq!(report.completed, 0);
        assert_sound(&report);
    }
}

#[test]
fn one_micro_unit_payments() {
    let g = spider::topology::ring(4, Amount::from_whole(10));
    let txs: Vec<Transaction> = (0..50)
        .map(|i| Transaction {
            id: PaymentId(i),
            src: NodeId((i % 4) as u32),
            dst: NodeId(((i + 2) % 4) as u32),
            amount: Amount::from_micros(1),
            arrival: 0.1 + i as f64 * 0.01,
        })
        .collect();
    let report = spider::sim::run(
        &g,
        &txs,
        &mut WaterfillingScheme::new(),
        &SimConfig::new(10.0),
    );
    assert_eq!(report.completed, 50, "dust payments must all clear");
    assert_sound(&report);
}

#[test]
fn payment_larger_than_network_capital() {
    let g = spider::topology::ring(4, Amount::from_whole(10));
    let txs = vec![tx(0, 0, 2, 1_000_000, 0.1)];
    let mut cfg = SimConfig::new(10.0);
    cfg.deadline = 5.0;
    let report = spider::sim::run(&g, &txs, &mut WaterfillingScheme::new(), &cfg);
    assert_eq!(report.completed, 0);
    assert!(report.delivered_volume < 40.0, "can't exceed total capital");
    assert_sound(&report);
}

#[test]
fn mtu_larger_than_any_payment_degenerates_to_single_unit() {
    let g = spider::topology::ring(5, Amount::from_whole(1000));
    let txs: Vec<Transaction> = (0..20)
        .map(|i| {
            tx(
                i,
                (i % 5) as u32,
                ((i + 2) % 5) as u32,
                50,
                0.1 + i as f64 * 0.1,
            )
        })
        .collect();
    let mut cfg = SimConfig::new(20.0);
    cfg.mtu = Amount::from_whole(1_000_000);
    let report = spider::sim::run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
    assert_eq!(
        report.units_sent as usize, report.completed,
        "one unit per payment"
    );
    assert_sound(&report);
}

#[test]
fn heavily_skewed_initial_balances() {
    // 95% of every channel's funds on one side.
    let base = spider::topology::isp_topology(Amount::from_whole(30_000));
    let skewed = spider::topology::with_skewed_balances(&base, 0.95, 0.99, 7);
    let mut cfg = TraceConfig::isp_default(skewed.num_nodes(), 2_000, 30.0);
    cfg.seed = 3;
    let txs = generate(&cfg, &isp_sizes());
    let report = spider::sim::run(
        &skewed,
        &txs,
        &mut WaterfillingScheme::new(),
        &SimConfig::new(30.0),
    );
    assert_sound(&report);
    // Must still deliver something: aggregate spendable funds are plentiful.
    assert!(report.success_ratio() > 0.2, "{}", report.summary());
    // And be worse than the balanced start.
    let balanced = spider::sim::run(
        &base,
        &txs,
        &mut WaterfillingScheme::new(),
        &SimConfig::new(30.0),
    );
    assert!(balanced.success_ratio() >= report.success_ratio());
}

#[test]
fn bursty_arrivals_stress_the_scheduler() {
    let g = spider::topology::isp_topology(Amount::from_whole(30_000));
    let mut cfg = TraceConfig::isp_default(g.num_nodes(), 3_000, 30.0);
    cfg.pattern = ArrivalPattern::Bursty {
        cycle: 5.0,
        burst_fraction: 0.1,
    };
    cfg.seed = 9;
    let txs = generate(&cfg, &isp_sizes());
    let report = spider::sim::run(
        &g,
        &txs,
        &mut WaterfillingScheme::new(),
        &SimConfig::new(30.0),
    );
    assert_sound(&report);
    assert!(report.success_ratio() > 0.3, "{}", report.summary());
}

#[test]
fn queued_engine_on_isp_stays_sound() {
    let g = spider::topology::isp_topology(Amount::from_whole(30_000));
    let mut cfg = TraceConfig::isp_default(g.num_nodes(), 2_000, 20.0);
    cfg.seed = 5;
    let txs = generate(&cfg, &isp_sizes());
    let mut qcfg = QueuedConfig::new(20.0);
    qcfg.deadline = 5.0;
    let out = spider::sim::run_queued(&g, &txs, &qcfg);
    assert_sound(&out.report);
    assert!(out.report.success_ratio() > 0.3, "{}", out.report.summary());
    // Queue stats are internally consistent.
    assert!(out.queues.units_dropped <= out.queues.units_queued);
    assert!(out.queues.mean_wait >= 0.0);
}

#[test]
fn queue_overflow_drops_cleanly() {
    // Tiny queue cap with a dry downstream: every queued unit beyond the
    // cap must be dropped (refunded), never lost.
    let mut g = spider::core::Network::new(3);
    g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10_000))
        .unwrap();
    g.add_channel_with_balances(NodeId(1), NodeId(2), Amount::ZERO, Amount::from_whole(50))
        .unwrap();
    let txs = vec![tx(0, 0, 2, 5_000, 0.1)];
    let mut qcfg = QueuedConfig::new(20.0);
    qcfg.deadline = 15.0;
    qcfg.max_queue_len = 4;
    let out = spider::sim::run_queued(&g, &txs, &qcfg);
    assert!(out.queues.units_dropped > 0, "{:?}", out.queues);
    assert_eq!(out.report.delivered_volume, 0.0);
    assert_sound(&out.report);
}

#[test]
fn zero_transactions_is_a_noop() {
    let g = spider::topology::ring(4, Amount::from_whole(10));
    let report = spider::sim::run(
        &g,
        &[],
        &mut ShortestPathScheme::new(),
        &SimConfig::new(5.0),
    );
    assert_eq!(report.attempted, 0);
    assert_eq!(report.units_sent, 0);
    assert_eq!(report.success_ratio(), 0.0);
}

#[test]
fn simultaneous_arrivals_are_deterministic() {
    let g = spider::topology::ring(6, Amount::from_whole(100));
    // 30 payments all arriving at the exact same instant.
    let txs: Vec<Transaction> = (0..30)
        .map(|i| tx(i, (i % 6) as u32, ((i + 3) % 6) as u32, 20, 1.0))
        .collect();
    let a = spider::sim::run(
        &g,
        &txs,
        &mut WaterfillingScheme::new(),
        &SimConfig::new(10.0),
    );
    let b = spider::sim::run(
        &g,
        &txs,
        &mut WaterfillingScheme::new(),
        &SimConfig::new(10.0),
    );
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.delivered_volume, b.delivered_volume);
    assert_sound(&a);
}

// ---------------------------------------------------------------------------
// Tier 2: full-scale stress. `cargo test --release --test stress -- --ignored`
// ---------------------------------------------------------------------------

/// Graduated tier-2: a 10k-node network through the partition-parallel
/// engine, bounded to a payment count CI can afford in debug builds. The
/// partitioner, the four-shard epoch loop, the owner guard, and the merge
/// all run at real scale; the full 100k-payment soak (with 1-vs-4-shard
/// byte-identity) stays `#[ignore]`d below.
#[test]
fn tier2_sharded_engine_10k_nodes_bounded() {
    use spider::sim::{run_sharded, ShardScheme, ShardedConfig};
    let g = spider::topology::ripple_topology_scaled(10_000, Amount::from_whole(5_000), 42);
    assert!(g.num_nodes() >= 10_000);
    let mut cfg = TraceConfig::ripple_default(g.num_nodes(), 400, 10.0);
    cfg.seed = 42;
    let txs = generate(&cfg, &ripple_sizes());
    let partition = Partition::build(&g, 4, 42);
    assert_eq!(partition.num_shards(), 4);
    let mut sim_cfg = ShardedConfig::new(15.0);
    sim_cfg.scheme = ShardScheme::ShortestPath;
    sim_cfg.audit = true;
    let report = run_sharded(&g, &txs, &partition, &sim_cfg);
    assert_sound(&report);
    assert!(report.attempted >= 390, "attempted {}", report.attempted);
    assert!(
        report.audit_violations.is_empty(),
        "sharded 10k-node run violated the audit: {:?}",
        report.audit_violations
    );
    assert!(
        report.success_ratio() > 0.1,
        "scale run must route real volume: {}",
        report.summary()
    );
}

/// Graduated tier-2: the feature-parity surface (queued router policy +
/// fees + rebalancing) through the 4-shard engine at 10k nodes, bounded to
/// a payment count CI can afford. The queue drain loop, fee accrual over
/// sorted settle messages, and owner-shard rebalancing all run at real
/// scale with the per-epoch auditor on.
#[test]
fn tier2_sharded_queued_full_features_10k_nodes_bounded() {
    use spider::routing::fees::FeeSchedule;
    use spider::sim::{run_sharded, RebalancePolicy, ShardPolicy, ShardedConfig};
    let g = spider::topology::ripple_topology_scaled(10_000, Amount::from_whole(5_000), 44);
    assert!(g.num_nodes() >= 10_000);
    let mut cfg = TraceConfig::ripple_default(g.num_nodes(), 400, 10.0);
    cfg.seed = 44;
    let txs = generate(&cfg, &ripple_sizes());
    let partition = Partition::build(&g, 4, 44);
    let mut sim_cfg = ShardedConfig::new(15.0);
    sim_cfg.policy = ShardPolicy::Queued;
    sim_cfg.fees = Some(FeeSchedule::uniform(&g, Amount::from_micros(10), 1_000));
    sim_cfg.rebalance = Some(RebalancePolicy::aggressive());
    sim_cfg.audit = true;
    let report = run_sharded(&g, &txs, &partition, &sim_cfg);
    assert_sound(&report);
    assert!(report.attempted >= 390, "attempted {}", report.attempted);
    assert!(
        report.audit_violations.is_empty(),
        "full-features sharded 10k-node run violated the audit: {:?}",
        report.audit_violations
    );
    assert!(
        report.success_ratio() > 0.1,
        "scale run must route real volume: {}",
        report.summary()
    );
}

/// Tier-3 soak of the same full-features surface: 10k nodes / 100k
/// payments at 1 and 4 shards, byte-identical reports and clean audits.
#[test]
#[ignore = "tier-3 scale test (10k nodes / 100k payments, 2 full-feature runs); run with --ignored"]
fn tier3_sharded_queued_full_features_100k_payments_identity() {
    use spider::routing::fees::FeeSchedule;
    use spider::sim::{run_sharded, RebalancePolicy, ShardPolicy, ShardedConfig};
    let g = spider::topology::ripple_topology_scaled(10_000, Amount::from_whole(5_000), 44);
    let mut cfg = TraceConfig::ripple_default(g.num_nodes(), 100_000, 600.0);
    cfg.seed = 44;
    let txs = generate(&cfg, &ripple_sizes());
    assert!(txs.len() >= 100_000);
    let end = txs.last().map_or(600.0, |t| t.arrival) + 1.0;
    let mut sim_cfg = ShardedConfig::new(end);
    sim_cfg.policy = ShardPolicy::Queued;
    sim_cfg.fees = Some(FeeSchedule::uniform(&g, Amount::from_micros(10), 1_000));
    sim_cfg.rebalance = Some(RebalancePolicy::aggressive());
    sim_cfg.audit = true;
    let r1 = run_sharded(&g, &txs, &Partition::single(&g), &sim_cfg);
    let r4 = run_sharded(&g, &txs, &Partition::build(&g, 4, 44), &sim_cfg);
    assert_sound(&r1);
    assert!(r1.audit_violations.is_empty() && r4.audit_violations.is_empty());
    assert_eq!(
        serde_json::to_string(&r1).expect("report serializes"),
        serde_json::to_string(&r4).expect("report serializes"),
        "full-features sharded report diverged between 1 and 4 shards at full scale"
    );
    assert!(r1.routing_fees_paid > 0.0);
}

/// Full tier-2 sharded soak: 10k nodes / 100k payments, run at 1 and 4
/// shards — the two reports must be byte-identical and audit-clean.
#[test]
#[ignore = "tier-2 scale test (10k nodes / 100k payments, 2 runs); run with --ignored"]
fn tier2_sharded_engine_10k_nodes_100k_payments_identity() {
    use spider::sim::{run_sharded, ShardScheme, ShardedConfig};
    let g = spider::topology::ripple_topology_scaled(10_000, Amount::from_whole(5_000), 42);
    let mut cfg = TraceConfig::ripple_default(g.num_nodes(), 100_000, 600.0);
    cfg.seed = 42;
    let txs = generate(&cfg, &ripple_sizes());
    assert!(txs.len() >= 100_000);
    let end = txs.last().map_or(600.0, |t| t.arrival) + 1.0;
    let mut sim_cfg = ShardedConfig::new(end);
    sim_cfg.scheme = ShardScheme::Waterfilling;
    sim_cfg.audit = true;
    let r1 = run_sharded(&g, &txs, &Partition::single(&g), &sim_cfg);
    let r4 = run_sharded(&g, &txs, &Partition::build(&g, 4, 42), &sim_cfg);
    assert_sound(&r1);
    assert!(r1.audit_violations.is_empty() && r4.audit_violations.is_empty());
    assert_eq!(
        serde_json::to_string(&r1).expect("report serializes"),
        serde_json::to_string(&r4).expect("report serializes"),
        "sharded report diverged between 1 and 4 shards at full scale"
    );
    assert!(r1.attempted >= 100_000);
}

/// 10k-node scale-free network, 100k payments, packet-switched routing.
/// The dense `Vec`-indexed state must keep exact conservation and clean
/// accounting at two orders of magnitude above the tier-1 scenarios.
#[test]
#[ignore = "tier-2 scale test (10k nodes / 100k payments); run with --ignored"]
fn tier2_packet_switched_10k_nodes_100k_payments() {
    let g = spider::topology::ripple_topology_scaled(10_000, Amount::from_whole(5_000), 42);
    assert!(g.num_nodes() >= 10_000);
    let mut cfg = TraceConfig::ripple_default(g.num_nodes(), 100_000, 600.0);
    cfg.seed = 42;
    let txs = generate(&cfg, &ripple_sizes());
    assert!(txs.len() >= 100_000);
    // Arrivals are Poisson-targeted at `duration`, so the tail can spill a
    // few seconds past it; the sim window must cover the whole trace for
    // every payment to be admitted.
    let end = txs.last().map_or(600.0, |t| t.arrival) + 1.0;
    let report = spider::sim::run(
        &g,
        &txs,
        &mut WaterfillingScheme::new(),
        &SimConfig::new(end),
    );
    assert_sound(&report);
    assert!(report.attempted >= 100_000);
    assert!(
        report.success_ratio() > 0.1,
        "scale run must route real volume: {}",
        report.summary()
    );
}

/// Same scale through the router-queue engine: queue bookkeeping (dense
/// per-channel slots) must stay internally consistent at 10k nodes.
#[test]
#[ignore = "tier-2 scale test (10k nodes / 100k payments); run with --ignored"]
fn tier2_queued_engine_10k_nodes_100k_payments() {
    let g = spider::topology::ripple_topology_scaled(10_000, Amount::from_whole(5_000), 43);
    let mut cfg = TraceConfig::ripple_default(g.num_nodes(), 100_000, 600.0);
    cfg.seed = 43;
    let txs = generate(&cfg, &ripple_sizes());
    let end = txs.last().map_or(600.0, |t| t.arrival) + 1.0;
    let mut qcfg = QueuedConfig::new(end);
    qcfg.deadline = 30.0;
    let out = spider::sim::run_queued(&g, &txs, &qcfg);
    assert_sound(&out.report);
    assert!(out.report.attempted >= 100_000);
    assert!(out.queues.units_dropped <= out.queues.units_queued);
    assert!(out.queues.mean_wait >= 0.0);
}

#[test]
fn all_extensions_enabled_together() {
    // Congestion control + rebalancing + AMP + fees, all at once.
    use spider::routing::fees::FeeSchedule;
    let g = spider::topology::isp_topology(Amount::from_whole(30_000));
    let mut cfg = TraceConfig::isp_default(g.num_nodes(), 1_500, 20.0);
    cfg.seed = 11;
    let txs = generate(&cfg, &isp_sizes());
    let mut sim_cfg = SimConfig::new(20.0);
    sim_cfg.congestion = Some(spider::sim::CongestionConfig::default());
    sim_cfg.rebalance = Some(spider::sim::RebalancePolicy::aggressive());
    sim_cfg.amp = true;
    sim_cfg.fees = Some(FeeSchedule::uniform(&g, Amount::from_micros(10), 1_000));
    let report = spider::sim::run(&g, &txs, &mut WaterfillingScheme::new(), &sim_cfg);
    assert_sound(&report);
    assert!(report.success_ratio() > 0.2, "{}", report.summary());
    assert!(report.routing_fees_paid > 0.0);
}
