//! Differential lockdown for crash-safe checkpoint/resume (SPSN snapshots).
//!
//! The contract under test: interrupting a run at *any* snapshot and
//! resuming from it must produce a `SimReport` and telemetry trace
//! byte-identical to the uninterrupted run — including under active fault
//! plans — and corrupt, truncated, or future-version snapshots must be
//! rejected with structured errors, never a panic.

use proptest::prelude::*;
use spider::prelude::*;
use spider::sim::engine::{resume, run_checkpointed};
use spider::sim::{latest_snapshot, CheckpointSpec, FaultConfig, FaultPlan, SnapshotError};
use spider::workload::{generate, isp_sizes};
use std::path::{Path, PathBuf};

/// Self-cleaning scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "spider-ckpt-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read checkpoint dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".spsn"))
        })
        .collect();
    files.sort();
    files
}

enum Scheme {
    Waterfilling,
    ShortestPath,
    Prices,
}

fn make_scheme(which: &Scheme) -> Box<dyn RoutingScheme> {
    match which {
        Scheme::Waterfilling => Box::new(WaterfillingScheme::new()),
        Scheme::ShortestPath => Box::new(ShortestPathScheme::new()),
        Scheme::Prices => Box::new(spider::routing::PriceScheme::with_config(
            spider::routing::PriceConfig {
                window: 32,
                ..Default::default()
            },
        )),
    }
}

/// Runs uninterrupted (checkpointing as it goes), then resumes from every
/// snapshot produced and asserts the report JSON and trace JSONL are
/// byte-identical to the straight run.
fn assert_resume_equivalence(
    network: &Network,
    txs: &[Transaction],
    config: &SimConfig,
    which: &Scheme,
    every: u64,
    tag: &str,
) {
    let dir = TempDir::new(tag);

    // Reference run without any checkpointing.
    let (ref_json, ref_trace) = {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let mut scheme = make_scheme(which);
        let report = spider::sim::run(network, txs, scheme.as_mut(), &cfg);
        (
            serde_json::to_string_pretty(&report).expect("report serializes"),
            tel.trace_jsonl(),
        )
    };

    // Checkpointed run: writing snapshots must not perturb the results.
    {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let mut scheme = make_scheme(which);
        let spec = CheckpointSpec::new(every, dir.path());
        let report =
            run_checkpointed(network, txs, scheme.as_mut(), &cfg, &spec).expect("checkpointed run");
        assert_eq!(
            serde_json::to_string_pretty(&report).expect("report serializes"),
            ref_json,
            "{tag}: checkpointing perturbed the report"
        );
        assert_eq!(
            tel.trace_jsonl(),
            ref_trace,
            "{tag}: checkpointing perturbed the trace"
        );
    }

    let snapshots = snapshot_files(dir.path());
    assert!(
        !snapshots.is_empty(),
        "{tag}: run produced no snapshots (every={every})"
    );

    // Resume from every snapshot — early, middle, and final alike.
    for snap in &snapshots {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let mut scheme = make_scheme(which);
        let report = resume(network, txs, scheme.as_mut(), &cfg, snap, None)
            .unwrap_or_else(|e| panic!("{tag}: resume from {} failed: {e}", snap.display()));
        assert_eq!(
            serde_json::to_string_pretty(&report).expect("report serializes"),
            ref_json,
            "{tag}: resume from {} diverged (report)",
            snap.display()
        );
        assert_eq!(
            tel.trace_jsonl(),
            ref_trace,
            "{tag}: resume from {} diverged (trace)",
            snap.display()
        );
    }
}

fn isp_scenario(seed: u64, num_txs: usize) -> (Network, Vec<Transaction>) {
    let network = spider::topology::isp_topology(Amount::from_whole(300));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), num_txs, 15.0);
    trace_cfg.seed = seed;
    let txs = generate(&trace_cfg, &isp_sizes());
    (network, txs)
}

fn full_config(end_time: f64) -> SimConfig {
    let mut cfg = SimConfig::new(end_time);
    cfg.record_series = true;
    cfg.audit = true;
    cfg
}

#[test]
fn waterfilling_resume_is_byte_identical() {
    let (network, txs) = isp_scenario(11, 300);
    assert_resume_equivalence(
        &network,
        &txs,
        &full_config(20.0),
        &Scheme::Waterfilling,
        40,
        "wf",
    );
}

#[test]
fn shortest_path_resume_is_byte_identical() {
    let (network, txs) = isp_scenario(23, 250);
    assert_resume_equivalence(
        &network,
        &txs,
        &full_config(18.0),
        &Scheme::ShortestPath,
        55,
        "sp",
    );
}

#[test]
fn price_scheme_resume_is_byte_identical() {
    let (network, txs) = isp_scenario(5, 250);
    assert_resume_equivalence(
        &network,
        &txs,
        &full_config(18.0),
        &Scheme::Prices,
        50,
        "prices",
    );
}

#[test]
fn resume_under_active_fault_plan_is_byte_identical() {
    let (network, txs) = isp_scenario(3, 300);
    let fault_cfg = FaultConfig::scenario("stress").expect("stress scenario exists");
    let mut cfg = full_config(20.0);
    cfg.faults = Some(FaultPlan::from_config(&fault_cfg, &network, 20.0));
    assert_resume_equivalence(&network, &txs, &cfg, &Scheme::Waterfilling, 35, "faults");
}

#[test]
fn resume_with_congestion_rebalance_and_fees_is_byte_identical() {
    let (network, txs) = isp_scenario(7, 250);
    let mut cfg = full_config(18.0);
    cfg.congestion = Some(spider::sim::CongestionConfig::default());
    cfg.rebalance = Some(spider::sim::RebalancePolicy::default());
    cfg.fees = Some(spider::routing::FeeSchedule::uniform(
        &network,
        Amount::from_micros(10),
        100,
    ));
    assert_resume_equivalence(&network, &txs, &cfg, &Scheme::Waterfilling, 45, "extras");
}

#[test]
fn resume_with_amp_is_byte_identical() {
    let (network, txs) = isp_scenario(13, 200);
    let mut cfg = full_config(16.0);
    cfg.amp = true;
    assert_resume_equivalence(&network, &txs, &cfg, &Scheme::Waterfilling, 30, "amp");
}

/// Same contract for the router-queue engine: resume from every snapshot,
/// byte-identical `QueuedReport` and trace.
fn assert_queued_resume_equivalence(
    network: &Network,
    txs: &[Transaction],
    config: &QueuedConfig,
    every: u64,
    tag: &str,
) {
    use spider::sim::engine_queued::{resume_queued, run_queued_checkpointed};
    let dir = TempDir::new(tag);

    let (ref_json, ref_trace) = {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let out = spider::sim::run_queued(network, txs, &cfg);
        (
            serde_json::to_string_pretty(&out).expect("report serializes"),
            tel.trace_jsonl(),
        )
    };

    {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let spec = CheckpointSpec::new(every, dir.path());
        let out = run_queued_checkpointed(network, txs, &cfg, &spec).expect("checkpointed run");
        assert_eq!(
            serde_json::to_string_pretty(&out).expect("report serializes"),
            ref_json,
            "{tag}: checkpointing perturbed the queued report"
        );
        assert_eq!(tel.trace_jsonl(), ref_trace);
    }

    let snapshots = snapshot_files(dir.path());
    assert!(!snapshots.is_empty(), "{tag}: no snapshots (every={every})");
    for snap in &snapshots {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let out = resume_queued(network, txs, &cfg, snap, None)
            .unwrap_or_else(|e| panic!("{tag}: resume from {} failed: {e}", snap.display()));
        assert_eq!(
            serde_json::to_string_pretty(&out).expect("report serializes"),
            ref_json,
            "{tag}: queued resume from {} diverged (report)",
            snap.display()
        );
        assert_eq!(
            tel.trace_jsonl(),
            ref_trace,
            "{tag}: queued resume from {} diverged (trace)",
            snap.display()
        );
    }
}

#[test]
fn queued_engine_resume_is_byte_identical() {
    let (network, txs) = isp_scenario(19, 250);
    let mut cfg = QueuedConfig::new(18.0);
    cfg.deadline = 8.0;
    assert_queued_resume_equivalence(&network, &txs, &cfg, 60, "queued");
}

#[test]
fn queued_engine_resume_under_faults_is_byte_identical() {
    let (network, txs) = isp_scenario(29, 250);
    let fault_cfg = FaultConfig::scenario("outages").expect("outages scenario exists");
    let mut cfg = QueuedConfig::new(18.0);
    cfg.deadline = 8.0;
    cfg.queue_policy = spider::sim::QueuePolicy::EarliestDeadline;
    cfg.faults = Some(FaultPlan::from_config(&fault_cfg, &network, 18.0));
    assert_queued_resume_equivalence(&network, &txs, &cfg, 45, "queued-faults");
}

/// Same contract for the partition-parallel engine: checkpoints taken at
/// the BSP epoch barrier must resume byte-identically at any shard count.
fn assert_sharded_resume_equivalence(
    network: &Network,
    txs: &[Transaction],
    config: &ShardedConfig,
    shards: usize,
    every: u64,
    tag: &str,
) {
    use spider::sim::engine_sharded::{resume_sharded, run_sharded_checkpointed};
    use spider::topology::Partition;
    let dir = TempDir::new(tag);
    let partition = if shards <= 1 {
        Partition::single(network)
    } else {
        Partition::build(network, shards, 7)
    };

    let (ref_json, ref_trace) = {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let report = spider::sim::run_sharded(network, txs, &partition, &cfg);
        (
            serde_json::to_string_pretty(&report).expect("report serializes"),
            tel.trace_jsonl(),
        )
    };

    {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let spec = CheckpointSpec::new(every, dir.path());
        let report = run_sharded_checkpointed(network, txs, &partition, &cfg, &spec)
            .expect("checkpointed run");
        assert_eq!(
            serde_json::to_string_pretty(&report).expect("report serializes"),
            ref_json,
            "{tag}: checkpointing perturbed the sharded report"
        );
        assert_eq!(
            tel.trace_jsonl(),
            ref_trace,
            "{tag}: checkpointing perturbed the sharded trace"
        );
    }

    let snapshots = snapshot_files(dir.path());
    assert!(!snapshots.is_empty(), "{tag}: no snapshots (every={every})");
    for snap in &snapshots {
        let tel = Telemetry::enabled();
        let mut cfg = config.clone();
        cfg.telemetry = tel.clone();
        let report = resume_sharded(network, txs, &partition, &cfg, snap, None)
            .unwrap_or_else(|e| panic!("{tag}: resume from {} failed: {e}", snap.display()));
        assert_eq!(
            serde_json::to_string_pretty(&report).expect("report serializes"),
            ref_json,
            "{tag}: sharded resume from {} diverged (report)",
            snap.display()
        );
        assert_eq!(
            tel.trace_jsonl(),
            ref_trace,
            "{tag}: sharded resume from {} diverged (trace)",
            snap.display()
        );
    }
}

fn sharded_config(end_time: f64) -> ShardedConfig {
    let mut cfg = ShardedConfig::new(end_time);
    cfg.record_series = true;
    cfg.audit = true;
    cfg
}

#[test]
fn sharded_engine_resume_is_byte_identical_single_shard() {
    let (network, txs) = isp_scenario(31, 250);
    assert_sharded_resume_equivalence(&network, &txs, &sharded_config(15.0), 1, 70, "shard1");
}

#[test]
fn sharded_engine_resume_is_byte_identical_four_shards() {
    let (network, txs) = isp_scenario(31, 250);
    assert_sharded_resume_equivalence(&network, &txs, &sharded_config(15.0), 4, 70, "shard4");
}

#[test]
fn sharded_engine_resume_under_faults_is_byte_identical() {
    let (network, txs) = isp_scenario(37, 250);
    let fault_cfg = FaultConfig::scenario("stress").expect("stress scenario exists");
    for shards in [1usize, 4] {
        let mut cfg = sharded_config(15.0);
        cfg.scheme = spider::sim::ShardScheme::ShortestPath;
        cfg.faults = Some(FaultPlan::from_config(&fault_cfg, &network, 15.0));
        assert_sharded_resume_equivalence(
            &network,
            &txs,
            &cfg,
            shards,
            55,
            &format!("shard-faults-{shards}"),
        );
    }
}

/// Sharded config with router queues, fees, congestion control, and
/// rebalancing all active — the feature-parity resume surface.
fn sharded_full_features_config(network: &Network, end_time: f64) -> ShardedConfig {
    let mut cfg = sharded_config(end_time);
    cfg.policy = spider::sim::ShardPolicy::Queued;
    cfg.fees = Some(spider::routing::FeeSchedule::uniform(
        network,
        Amount::from_micros(10),
        1_000,
    ));
    cfg.congestion = Some(spider::sim::CongestionConfig::default());
    cfg.rebalance = Some(spider::sim::RebalancePolicy::aggressive());
    cfg
}

#[test]
fn sharded_full_features_resume_is_byte_identical() {
    // Mid-epoch snapshots carry live queue entries, congestion windows, fee
    // accrual, and pending rebalance confirmations in SEC_SHARD_EXT; resume
    // must reproduce the uninterrupted run byte for byte at 1 and 4 shards.
    let (network, txs) = isp_scenario(43, 250);
    let cfg = sharded_full_features_config(&network, 15.0);
    for shards in [1usize, 4] {
        assert_sharded_resume_equivalence(
            &network,
            &txs,
            &cfg,
            shards,
            55,
            &format!("shard-full-{shards}"),
        );
    }
}

#[test]
fn sharded_ext_section_corruption_is_rejected() {
    use spider::sim::engine_sharded::{resume_sharded, run_sharded_checkpointed};
    use spider::sim::snapshot::{decode_snapshot, encode_snapshot, SEC_SHARD_EXT};
    use spider::topology::Partition;

    let (network, txs) = isp_scenario(47, 200);
    let cfg = sharded_full_features_config(&network, 12.0);
    let dir = TempDir::new("shard-ext-corrupt");
    let partition = Partition::build(&network, 4, 7);
    {
        let spec = CheckpointSpec::new(40, dir.path());
        run_sharded_checkpointed(&network, &txs, &partition, &cfg, &spec)
            .expect("checkpointed run");
    }
    let snap_path = latest_snapshot(dir.path())
        .expect("scan dir")
        .expect("at least one snapshot");
    let snap = decode_snapshot(&std::fs::read(&snap_path).expect("read snapshot"))
        .expect("snapshot decodes");

    // Re-encodes the snapshot with a transformed SEC_SHARD_EXT section
    // (checksums recomputed, so only the structural validation can object)
    // and asserts resume refuses it.
    let resume_with_ext = |label: &str, ext: Option<Vec<u8>>| {
        let mut sections: Vec<(u32, Vec<u8>)> = snap
            .sections
            .iter()
            .filter(|(t, _)| *t != SEC_SHARD_EXT)
            .cloned()
            .collect();
        if let Some(bytes) = ext {
            sections.push((SEC_SHARD_EXT, bytes));
        }
        let bytes = encode_snapshot(snap.engine, snap.fingerprint, snap.progress, &sections);
        let path = dir.path().join(format!("tampered-{label}.spsn"));
        std::fs::write(&path, bytes).expect("write tampered snapshot");
        resume_sharded(&network, &txs, &partition, &cfg, &path, None)
            .err()
            .unwrap_or_else(|| panic!("{label}: tampered SEC_SHARD_EXT was accepted"))
    };

    let ext = snap.section(SEC_SHARD_EXT).expect("ext section present");

    // Dropping the section entirely: queues/fees/windows would be lost.
    match resume_with_ext("missing", None) {
        SnapshotError::MissingSection { .. } => {}
        other => panic!("expected MissingSection, got {other:?}"),
    }

    // Truncations at a spread of offsets must all be caught structurally.
    for cut in [0, 2, ext.len() / 2, ext.len() - 1] {
        match resume_with_ext(&format!("trunc-{cut}"), Some(ext[..cut].to_vec())) {
            SnapshotError::Corrupt { .. } => {}
            other => panic!("trunc-{cut}: expected Corrupt, got {other:?}"),
        }
    }

    // Wrong shard count in the ext header: blob/partition disagreement.
    let mut bad_count = ext.to_vec();
    bad_count[0] ^= 0xFF;
    match resume_with_ext("shard-count", Some(bad_count)) {
        SnapshotError::Corrupt { .. } => {}
        other => panic!("shard-count: expected Corrupt, got {other:?}"),
    }

    // Trailing garbage after a well-formed blob must also be refused.
    let mut padded = ext.to_vec();
    padded.extend_from_slice(&[0xAB; 7]);
    match resume_with_ext("padded", Some(padded)) {
        SnapshotError::Corrupt { .. } => {}
        other => panic!("padded: expected Corrupt, got {other:?}"),
    }

    // The untampered snapshot still resumes: the harness itself is sound.
    resume_sharded(&network, &txs, &partition, &cfg, &snap_path, None)
        .expect("pristine snapshot resumes");
}

#[test]
fn sharded_feature_config_mismatch_is_rejected() {
    // A snapshot captured with features on cannot resume with them off (and
    // vice versa): the fingerprint covers the feature configuration.
    use spider::sim::engine_sharded::{resume_sharded, run_sharded_checkpointed};
    use spider::topology::Partition;
    let (network, txs) = isp_scenario(53, 150);
    let cfg = sharded_full_features_config(&network, 12.0);
    let dir = TempDir::new("shard-feature-mismatch");
    let partition = Partition::build(&network, 2, 7);
    {
        let spec = CheckpointSpec::new(40, dir.path());
        run_sharded_checkpointed(&network, &txs, &partition, &cfg, &spec)
            .expect("checkpointed run");
    }
    let snap = latest_snapshot(dir.path())
        .expect("scan dir")
        .expect("at least one snapshot");
    let plain = sharded_config(12.0);
    match resume_sharded(&network, &txs, &partition, &plain, &snap, None) {
        Err(SnapshotError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn sharded_snapshot_is_rejected_under_a_different_partition() {
    use spider::sim::engine_sharded::{resume_sharded, run_sharded_checkpointed};
    use spider::topology::Partition;
    let (network, txs) = isp_scenario(41, 150);
    let cfg = sharded_config(12.0);
    let dir = TempDir::new("shard-part");
    {
        let partition = Partition::build(&network, 4, 7);
        let spec = CheckpointSpec::new(40, dir.path());
        run_sharded_checkpointed(&network, &txs, &partition, &cfg, &spec)
            .expect("checkpointed run");
    }
    let snap = latest_snapshot(dir.path())
        .expect("scan dir")
        .expect("at least one snapshot");
    // Payments are owned by `id % num_shards`: per-shard blobs are only
    // valid under the partition that wrote them.
    let other = Partition::build(&network, 2, 7);
    match resume_sharded(&network, &txs, &other, &cfg, &snap, None) {
        Err(SnapshotError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn cross_engine_snapshots_are_rejected() {
    use spider::sim::engine_queued::resume_queued;
    let (network, txs) = isp_scenario(11, 150);
    let cfg = full_config(12.0);
    let dir = TempDir::new("cross");
    {
        let mut scheme = make_scheme(&Scheme::Waterfilling);
        let spec = CheckpointSpec::new(25, dir.path());
        run_checkpointed(&network, &txs, scheme.as_mut(), &cfg, &spec).expect("checkpointed run");
    }
    let snap = latest_snapshot(dir.path())
        .expect("scan dir")
        .expect("at least one snapshot");
    // A sequential-engine snapshot fed to the queued engine must be refused
    // as WrongEngine (or ConfigMismatch if fingerprints differ first).
    let qcfg = QueuedConfig::new(12.0);
    match resume_queued(&network, &txs, &qcfg, &snap, None) {
        Err(SnapshotError::WrongEngine { .. } | SnapshotError::ConfigMismatch { .. }) => {}
        other => panic!("expected WrongEngine/ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_inputs_are_rejected_structurally() {
    let (network, txs) = isp_scenario(11, 150);
    let cfg = full_config(12.0);
    let dir = TempDir::new("mixup");
    {
        let mut scheme = make_scheme(&Scheme::Waterfilling);
        let spec = CheckpointSpec::new(25, dir.path());
        run_checkpointed(&network, &txs, scheme.as_mut(), &cfg, &spec).expect("checkpointed run");
    }
    let snap = latest_snapshot(dir.path())
        .expect("scan dir")
        .expect("at least one snapshot");

    // Different workload seed -> different fingerprint.
    let (_, other_txs) = isp_scenario(12, 150);
    let mut scheme = make_scheme(&Scheme::Waterfilling);
    match resume(&network, &other_txs, scheme.as_mut(), &cfg, &snap, None) {
        Err(SnapshotError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }

    // Different scheme -> different fingerprint.
    let mut scheme = make_scheme(&Scheme::ShortestPath);
    match resume(&network, &txs, scheme.as_mut(), &cfg, &snap, None) {
        Err(SnapshotError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }

    // Different config -> different fingerprint.
    let mut scheme = make_scheme(&Scheme::Waterfilling);
    let mut other_cfg = cfg.clone();
    other_cfg.deadline += 1.0;
    match resume(&network, &txs, scheme.as_mut(), &other_cfg, &snap, None) {
        Err(SnapshotError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn damaged_snapshots_are_rejected_not_panicked() {
    let (network, txs) = isp_scenario(17, 150);
    let cfg = full_config(12.0);
    let dir = TempDir::new("damage");
    {
        let mut scheme = make_scheme(&Scheme::Waterfilling);
        let spec = CheckpointSpec::new(25, dir.path());
        run_checkpointed(&network, &txs, scheme.as_mut(), &cfg, &spec).expect("checkpointed run");
    }
    let snap = latest_snapshot(dir.path())
        .expect("scan dir")
        .expect("at least one snapshot");
    let bytes = std::fs::read(&snap).expect("read snapshot");

    let try_resume = |raw: &[u8], label: &str| {
        let mangled = dir.path().join(format!("mangled-{label}.bin"));
        std::fs::write(&mangled, raw).expect("write mangled snapshot");
        let mut scheme = make_scheme(&Scheme::Waterfilling);
        resume(&network, &txs, scheme.as_mut(), &cfg, &mangled, None)
            .err()
            .unwrap_or_else(|| panic!("{label}: damaged snapshot was accepted"))
    };

    // Truncations at a spread of byte offsets.
    for cut in [0, 3, 4, 5, 9, 17, bytes.len() / 2, bytes.len() - 1] {
        let _ = try_resume(&bytes[..cut], &format!("trunc-{cut}"));
    }

    // Bit flips across the file, including header and payload bytes.
    let step = (bytes.len() / 23).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x40;
        let _ = try_resume(&flipped, &format!("flip-{pos}"));
    }

    // Future format version.
    let mut future = bytes.clone();
    future[4] = 0xFF;
    match try_resume(&future, "future") {
        SnapshotError::UnsupportedVersion { found: 0xFF, .. } => {}
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    // Bad magic.
    let mut magic = bytes.clone();
    magic[0] = b'X';
    match try_resume(&magic, "magic") {
        SnapshotError::BadMagic { .. } => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graph x workload x fault plan x checkpoint cadence: resuming
    /// from every snapshot reproduces the straight run byte-for-byte.
    #[test]
    fn prop_resume_equals_straight_run(
        n in 8usize..24,
        p in 0.2f64..0.5,
        topo_seed in any::<u64>(),
        trace_seed in any::<u64>(),
        num_txs in 30usize..120,
        capacity in 40i64..400,
        every in 5u64..80,
        with_faults in any::<bool>(),
        fault_seed in any::<u64>(),
        outage_rate in 0.0f64..0.4,
        drop_prob in 0.0f64..0.15,
    ) {
        let network = spider::topology::erdos_renyi(
            n, p, Amount::from_whole(capacity), topo_seed,
        );
        if network.num_channels() == 0 {
            return Ok(());
        }
        let mut trace_cfg = TraceConfig::isp_default(n, num_txs, 8.0);
        trace_cfg.seed = trace_seed;
        let txs = generate(&trace_cfg, &isp_sizes());
        let mut cfg = full_config(11.0);
        if with_faults {
            let fc = FaultConfig {
                seed: fault_seed,
                channel_outage_rate: outage_rate,
                unit_drop_prob: drop_prob,
                ..FaultConfig::default()
            };
            cfg.faults = Some(FaultPlan::from_config(&fc, &network, 11.0));
        }
        assert_resume_equivalence(
            &network, &txs, &cfg, &Scheme::Waterfilling, every, "prop",
        );
    }
}
