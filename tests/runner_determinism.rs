//! Determinism regression for the parallel experiment grid runner: the
//! aggregated JSON must be byte-identical across repeated runs and across
//! worker counts.

use spider_bench::{run_grid, ExperimentConfig, GridConfig, SchemeChoice};

fn small_grid() -> GridConfig {
    let mut base = ExperimentConfig::isp_quick();
    base.num_transactions = 300;
    base.duration = 10.0;
    GridConfig {
        base,
        schemes: vec![SchemeChoice::ShortestPath, SchemeChoice::SpiderWaterfilling],
        capacities: vec![10_000.0, 30_000.0],
        trials: 2,
        audit: true,
        telemetry: false,
        faults: None,
        outage_rates: Vec::new(),
    }
}

#[test]
fn same_config_twice_is_byte_identical() {
    let config = small_grid();
    let a = run_grid(&config, 2).unwrap();
    let b = run_grid(&config, 2).unwrap();
    assert_eq!(
        a.to_json().unwrap(),
        b.to_json().unwrap(),
        "grid runs must be reproducible"
    );
}

#[test]
fn one_vs_four_workers_is_byte_identical() {
    let config = small_grid();
    let serial = run_grid(&config, 1).unwrap();
    let parallel = run_grid(&config, 4).unwrap();
    assert_eq!(
        serial.to_json().unwrap(),
        parallel.to_json().unwrap(),
        "aggregated output must not depend on SPIDER_JOBS / worker count"
    );
    // And the runs were audited for real, with a clean ledger.
    assert!(serial.summaries.iter().all(|s| s.audit_checks > 0));
    assert_eq!(serial.total_audit_violations(), 0);
}

#[test]
fn cell_seeds_differ_across_trials_and_match_the_derivation() {
    let config = small_grid();
    let result = run_grid(&config, 2).unwrap();
    let mut seeds: Vec<u64> = result.cells.iter().map(|c| c.cell.seed).collect();
    for (i, cell) in result.cells.iter().enumerate() {
        assert_eq!(cell.cell.index, i);
        assert_eq!(
            cell.cell.seed,
            spider_bench::derive_cell_seed(config.base.seed, i as u64)
        );
    }
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(
        seeds.len(),
        result.cells.len(),
        "every cell needs a distinct seed"
    );
}
