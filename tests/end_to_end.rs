//! End-to-end integration: topology → workload → routing → simulation,
//! exercising the whole public API surface the way a downstream user would.

use spider::prelude::*;
use spider::routing::{PathCache, PathStrategy};
use spider::workload::{demand_matrix, isp_sizes, SenderDistribution};

fn isp() -> Network {
    spider::topology::isp_topology(Amount::from_whole(30_000))
}

fn trace(network: &Network, n: usize, duration: f64, seed: u64) -> Vec<Transaction> {
    let mut cfg = TraceConfig::isp_default(network.num_nodes(), n, duration);
    cfg.seed = seed;
    cfg.senders = SenderDistribution::Exponential { scale: 8.0 };
    spider::workload::generate(&cfg, &isp_sizes())
}

#[test]
fn full_pipeline_with_every_scheme() {
    let network = isp();
    let txs = trace(&network, 1_000, 20.0, 3);
    let config = SimConfig::new(20.0);

    let mut schemes: Vec<Box<dyn RoutingScheme>> = vec![
        Box::new(ShortestPathScheme::new()),
        Box::new(WaterfillingScheme::new()),
        Box::new(MaxFlowScheme::new()),
        Box::new(SilentWhispersScheme::new(&network, 3)),
        Box::new(SpeedyMurmursScheme::new(&network, 3)),
    ];
    // Spider (LP) needs the demand estimate.
    let demand = demand_matrix(&txs, 0.0, 20.0);
    let mut cache = PathCache::new(PathStrategy::EdgeDisjoint(4));
    let mut paths = Vec::new();
    for (s, d, _) in demand.entries() {
        paths.extend(cache.paths(&network, s, d).iter().map(|p| (**p).clone()));
    }
    let pd = spider::opt::PrimalDualConfig {
        max_iters: 3_000,
        ..Default::default()
    };
    schemes.push(Box::new(LpScheme::solve_decentralized(
        &network, &demand, &paths, 0.5, &pd,
    )));

    for scheme in &mut schemes {
        let report = spider::sim::run(&network, &txs, scheme.as_mut(), &config);
        assert!(
            report.attempted > 900,
            "{}: attempted {}",
            report.scheme,
            report.attempted
        );
        assert!(
            report.completed + report.abandoned + report.pending_at_end == report.attempted,
            "{}: accounting must add up",
            report.scheme
        );
        assert!(report.delivered_volume <= report.attempted_volume + 1e-6);
        assert!(
            report.success_ratio() > 0.05,
            "{} did nothing",
            report.scheme
        );
    }
}

#[test]
fn ledger_conservation_through_full_run() {
    // Run the sim manually, then re-run with a fresh ledger and assert the
    // engine's internal debug assertions held (release builds re-verify here).
    let network = isp();
    let txs = trace(&network, 2_000, 30.0, 9);
    let mut scheme = WaterfillingScheme::new();
    let report = spider::sim::run(&network, &txs, &mut scheme, &SimConfig::new(30.0));
    // Funds can only sit in channels: delivered + refunded + in-flight all
    // trace back to channel balances, whose sum is invariant. The report's
    // imbalance metric must be a valid ratio.
    assert!((0.0..=1.0).contains(&report.final_mean_imbalance));
    assert!(report.units_sent > 0);
}

#[test]
fn serde_round_trips_network_and_report() {
    let network = isp();
    let json = serde_json::to_string(&network).expect("network serializes");
    let mut back: Network = serde_json::from_str(&json).expect("network deserializes");
    back.rebuild_index();
    assert_eq!(back.num_nodes(), network.num_nodes());
    assert_eq!(back.num_channels(), network.num_channels());
    assert!(back.channel_between(NodeId(0), NodeId(1)).is_some());

    let txs = trace(&network, 200, 10.0, 1);
    let report = spider::sim::run(
        &network,
        &txs,
        &mut ShortestPathScheme::new(),
        &SimConfig::new(10.0),
    );
    let json = serde_json::to_string(&report).unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.completed, report.completed);
}

#[test]
fn edge_list_round_trip_through_topology_crate() {
    let network = isp();
    let text = spider::topology::to_edge_list(&network);
    let back = spider::topology::from_edge_list(&text).expect("parse back");
    assert_eq!(back.num_channels(), network.num_channels());
    assert_eq!(back.total_capacity(), network.total_capacity());
}

#[test]
fn scheduling_policies_change_outcomes_but_stay_consistent() {
    let network = isp();
    let txs = trace(&network, 3_000, 30.0, 5);
    let mut results = Vec::new();
    for policy in [
        SchedulePolicy::Srpt,
        SchedulePolicy::Fifo,
        SchedulePolicy::Lifo,
        SchedulePolicy::Edf,
    ] {
        let mut config = SimConfig::new(30.0);
        config.policy = policy;
        let report = spider::sim::run(&network, &txs, &mut WaterfillingScheme::new(), &config);
        assert!(report.success_ratio() > 0.3, "{:?} too weak", policy);
        results.push((policy, report.success_ratio()));
    }
    // SRPT should be at least as good as LIFO on success ratio (it
    // prioritizes nearly-done payments).
    let srpt = results[0].1;
    let lifo = results[2].1;
    assert!(srpt >= lifo - 0.02, "SRPT {srpt} vs LIFO {lifo}");
}

#[test]
fn atomic_schemes_leave_no_inflight_dangling() {
    // Atomic payments settle exactly Δ after arrival; by end_time all
    // in-flight funds are settled (Δ < end - last arrival).
    let network = isp();
    let txs = trace(&network, 500, 10.0, 11);
    let mut scheme = MaxFlowScheme::new();
    let mut config = SimConfig::new(20.0);
    config.record_series = true;
    let report = spider::sim::run(&network, &txs, &mut scheme, &config);
    assert_eq!(report.pending_at_end, 0, "atomic payments never linger");
    assert_eq!(report.completed + report.abandoned, report.attempted);
    // Strict volume equals delivered volume for atomic schemes.
    assert!((report.delivered_volume - report.completed_volume).abs() < 1e-6);
}

#[test]
fn capacity_scaling_improves_waterfilling() {
    let txs_for = |cap: i64, seed: u64| {
        let network = spider::topology::isp_topology(Amount::from_whole(cap));
        let txs = trace(&network, 2_000, 30.0, seed);
        let report = spider::sim::run(
            &network,
            &txs,
            &mut WaterfillingScheme::new(),
            &SimConfig::new(30.0),
        );
        report.success_ratio()
    };
    let low = txs_for(5_000, 2);
    let high = txs_for(100_000, 2);
    assert!(high > low, "more capacity must help: {low} vs {high}");
}
