//! Integration tests asserting the paper's evaluation *shape* end-to-end:
//! who wins, by roughly what factor, and where the analytic numbers land.
//!
//! Absolute throughputs depend on the synthetic workload, but these
//! relationships are the claims of §6.2 and must hold.

use spider_bench::{
    fig4_fig5, fig6, rebalancing_curve, run_scheme, ExperimentConfig, SchemeChoice,
};
use spider_core::DemandMatrix;
use spider_workload::demand_matrix;

/// Fig. 4 / Fig. 5: the analytic example reproduces the paper's numbers
/// exactly.
#[test]
fn fig4_and_fig5_reproduce_paper_numbers() {
    let r = fig4_fig5();
    assert_eq!(r.total_demand, 12.0);
    assert!((r.shortest_path_throughput - 5.0).abs() < 1e-6);
    assert!((r.optimal_throughput - 8.0).abs() < 1e-6);
    assert!((r.circulation_value - 8.0).abs() < 1e-9);
    assert!((r.dag_value - 4.0).abs() < 1e-9);
}

/// §5.2.3: t(B) is non-decreasing and concave, anchored at ν(C*) and capped
/// at total demand.
#[test]
fn rebalancing_frontier_shape() {
    let budgets = [0.0, 1.0, 2.0, 3.0, 4.0, 8.0, 16.0];
    let pts = rebalancing_curve(&budgets);
    assert!((pts[0].throughput - 8.0).abs() < 1e-6, "t(0) = ν(C*)");
    assert!(
        (pts.last().unwrap().throughput - 12.0).abs() < 1e-6,
        "t(∞) = total demand"
    );
    for w in pts.windows(2) {
        assert!(w[1].throughput >= w[0].throughput - 1e-9, "monotone");
    }
    let gains: Vec<f64> = (1..5)
        .map(|i| pts[i].throughput - pts[i - 1].throughput)
        .collect();
    for w in gains.windows(2) {
        assert!(w[1] <= w[0] + 1e-6, "concave: {gains:?}");
    }
}

fn small_isp() -> ExperimentConfig {
    // Imbalance (and with it the gap between schemes) accumulates over the
    // run, so the window must be long enough for the §6.2 orderings to
    // emerge; 150 s at the paper's arrival rate is plenty.
    let mut cfg = ExperimentConfig::isp_quick();
    cfg.num_transactions = 15_000;
    cfg.duration = 150.0;
    cfg
}

/// Fig. 6 (ISP) shape: the §6.2 relationships between schemes.
#[test]
fn fig6_isp_ordering() {
    let reports = fig6(&small_isp());
    let by_name = |name: &str| {
        reports
            .iter()
            .find(|r| r.scheme == name)
            .unwrap_or_else(|| panic!("missing scheme {name}"))
    };
    let sw = by_name("silentwhispers");
    let sp = by_name("shortest-path");
    let mf = by_name("max-flow");
    let wf = by_name("spider-waterfilling");
    let lp = by_name("spider-lp");

    // Packet-switched shortest path beats SilentWhispers on both metrics
    // (§6.2: "+10% success ratio ... even for shortest path").
    assert!(
        sp.success_ratio() > 1.05 * sw.success_ratio(),
        "shortest-path {} vs silentwhispers {}",
        sp.success_ratio(),
        sw.success_ratio()
    );
    assert!(sp.success_volume() > sw.success_volume());

    // Waterfilling within ~5% of max-flow (§6.2) and above every
    // non-Spider scheme on success volume.
    assert!(
        wf.success_ratio() > 0.93 * mf.success_ratio(),
        "waterfilling {} vs max-flow {}",
        wf.success_ratio(),
        mf.success_ratio()
    );
    for r in &reports {
        if r.scheme != "max-flow" && r.scheme != "spider-waterfilling" {
            assert!(
                wf.success_volume() >= r.success_volume(),
                "waterfilling should lead {}: {} vs {}",
                r.scheme,
                wf.success_volume(),
                r.success_volume()
            );
        }
    }

    // Max-flow is the gold standard on success ratio.
    for r in &reports {
        assert!(
            mf.success_ratio() >= r.success_ratio() - 0.02,
            "max-flow should lead {}",
            r.scheme
        );
    }

    // The LP routes the circulation component of the demand (§6.2: its
    // success volume "corresponds precisely to the circulation component of
    // the payment graph"). In a finite run the initial channel balances add
    // a transient cushion that funds some DAG flow, so the measured volume
    // sits at or above the circulation fraction and decays toward it as the
    // horizon grows (measured: 0.75 @150s -> 0.67 @200s -> 0.63 @400s
    // against a 0.52 fraction).
    let cfg = small_isp();
    let network = cfg.network();
    let trace = cfg.trace(&network);
    let demand: DemandMatrix = demand_matrix(&trace, 0.0, cfg.duration);
    let dec = spider_opt::circulation::decompose(&demand);
    let circ_frac = dec.circulation_fraction();
    let lp_vol = lp.strict_success_volume();
    assert!(
        lp_vol >= circ_frac - 0.05,
        "LP volume {lp_vol} must cover the circulation fraction {circ_frac}"
    );
    assert!(
        lp_vol <= circ_frac + 0.30,
        "LP volume {lp_vol} should stay near the circulation fraction {circ_frac}"
    );
}

/// Fig. 7 shape: success grows with capacity for adaptive schemes, and the
/// LP is comparatively insensitive to capacity.
#[test]
fn fig7_capacity_trends() {
    let mut cfg = small_isp();
    let mut ratios: Vec<Vec<f64>> = Vec::new();
    for capacity in [10_000.0, 30_000.0, 100_000.0] {
        cfg.capacity = capacity;
        let reports = fig6(&cfg);
        ratios.push(reports.iter().map(|r| r.success_ratio()).collect());
    }
    // Every scheme improves (weakly) from 10k to 100k.
    for s in 0..SchemeChoice::ALL.len() {
        assert!(
            ratios[2][s] >= ratios[0][s] - 0.02,
            "scheme {s} did not improve with capacity: {ratios:?}"
        );
    }
    // Waterfilling gains substantially; the LP barely moves (paper: "Spider
    // (LP) is less sensitive to changes in capacity").
    let wf_gain = ratios[2][4] - ratios[0][4];
    let lp_gain = ratios[2][5] - ratios[0][5];
    assert!(wf_gain > 0.1, "waterfilling gain {wf_gain}");
    assert!(
        lp_gain < wf_gain / 2.0,
        "lp gain {lp_gain} vs wf gain {wf_gain}"
    );
}

/// Reports are deterministic: same config, same results.
#[test]
fn experiment_runs_are_deterministic() {
    let mut cfg = ExperimentConfig::isp_quick();
    cfg.num_transactions = 1_500;
    cfg.duration = 20.0;
    let a = run_scheme(&cfg, SchemeChoice::SpiderWaterfilling);
    let b = run_scheme(&cfg, SchemeChoice::SpiderWaterfilling);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.units_sent, b.units_sent);
    assert_eq!(a.delivered_volume, b.delivered_volume);
}
