//! Sequential-vs-sharded differential lockdown for the partition-parallel
//! engine (`spider::sim::run_sharded`).
//!
//! The engine's contract is *partition independence*: the partition decides
//! where work happens, never what happens. These tests enforce the strong
//! form of that contract — for any topology, workload, and fault plan, the
//! run at 1 shard and the runs at 2/4/7 shards must produce
//!
//! - **byte-identical** `SimReport` JSON (every counter, every float),
//! - **byte-identical** trace JSONL (same events, same global order), and
//! - **zero** ledger-audit violations with the per-epoch auditor on
//!   (including the `ForeignSlotMutation` owner guard, which is active in
//!   release builds too).
//!
//! Deterministic scenarios pin the paper topologies; the proptest sweeps
//! random graphs × workloads × fault plans.

use proptest::prelude::*;
use spider::prelude::*;
use spider::routing::FeeSchedule;
use spider::sim::{
    run_sharded, CongestionConfig, FaultConfig, FaultPlan, RebalancePolicy, ShardPolicy,
    ShardedConfig,
};
use spider::workload::{generate, isp_sizes, TraceConfig};

/// Shard counts differenced against the single-shard reference: even,
/// power-of-two, and a prime that never divides the payment count evenly.
const SHARD_COUNTS: [usize; 3] = [2, 4, 7];

/// Runs the scenario at one shard count, returning the report and trace.
fn run_at(
    network: &Network,
    txs: &[Transaction],
    config: &ShardedConfig,
    shards: usize,
    seed: u64,
) -> (SimReport, String) {
    let partition = if shards <= 1 {
        Partition::single(network)
    } else {
        Partition::build(network, shards, seed)
    };
    let tel = Telemetry::enabled();
    let mut cfg = config.clone();
    cfg.telemetry = tel.clone();
    cfg.audit = true;
    let report = run_sharded(network, txs, &partition, &cfg);
    (report, tel.trace_jsonl())
}

/// The core differential assertion: every shard count in [`SHARD_COUNTS`]
/// must reproduce the single-shard run byte for byte, with a clean audit.
fn assert_shard_equivalence(
    network: &Network,
    txs: &[Transaction],
    config: &ShardedConfig,
    seed: u64,
) {
    let (ref_report, ref_trace) = run_at(network, txs, config, 1, seed);
    assert!(
        ref_report.audit_violations.is_empty(),
        "single-shard run violated the ledger audit: {:?}",
        ref_report.audit_violations
    );
    let ref_json = serde_json::to_string_pretty(&ref_report).expect("report serializes");
    for &shards in &SHARD_COUNTS {
        let (report, trace) = run_at(network, txs, config, shards, seed);
        assert!(
            report.audit_violations.is_empty(),
            "{shards}-shard run violated the ledger audit: {:?}",
            report.audit_violations
        );
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert_eq!(
            ref_json, json,
            "SimReport JSON diverged between 1 and {shards} shards"
        );
        assert_eq!(
            ref_trace, trace,
            "trace JSONL diverged between 1 and {shards} shards"
        );
    }
}

fn base_config(end_time: f64) -> ShardedConfig {
    let mut cfg = ShardedConfig::new(end_time);
    cfg.record_series = true;
    cfg
}

// ---------------------------------------------------------------------------
// Deterministic scenarios on the paper topologies.
// ---------------------------------------------------------------------------

#[test]
fn isp_workload_is_partition_independent() {
    let network = spider::topology::isp_topology(Amount::from_whole(300));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 400, 20.0);
    trace_cfg.seed = 11;
    let txs = generate(&trace_cfg, &isp_sizes());
    assert_shard_equivalence(&network, &txs, &base_config(25.0), 11);
}

#[test]
fn ripple_workload_is_partition_independent() {
    let network = spider::topology::ripple_topology_scaled(120, Amount::from_whole(2_000), 5);
    let mut trace_cfg = TraceConfig::ripple_default(network.num_nodes(), 300, 15.0);
    trace_cfg.seed = 5;
    let txs = generate(&trace_cfg, &isp_sizes());
    assert_shard_equivalence(&network, &txs, &base_config(20.0), 5);
}

#[test]
fn shortest_path_scheme_is_partition_independent() {
    let network = spider::topology::isp_topology(Amount::from_whole(200));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 300, 15.0);
    trace_cfg.seed = 23;
    let txs = generate(&trace_cfg, &isp_sizes());
    let mut cfg = base_config(20.0);
    cfg.scheme = spider::sim::ShardScheme::ShortestPath;
    assert_shard_equivalence(&network, &txs, &cfg, 23);
}

#[test]
fn contended_channels_are_partition_independent() {
    // Tight capacity: units race for the same channels, so the lock-order
    // and refund paths are exercised hard.
    let network = spider::topology::isp_topology(Amount::from_whole(40));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 500, 10.0);
    trace_cfg.seed = 7;
    let txs = generate(&trace_cfg, &isp_sizes());
    assert_shard_equivalence(&network, &txs, &base_config(15.0), 7);
}

#[test]
fn fault_stress_scenario_is_partition_independent() {
    let network = spider::topology::isp_topology(Amount::from_whole(300));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 300, 15.0);
    trace_cfg.seed = 3;
    let txs = generate(&trace_cfg, &isp_sizes());
    let fault_cfg = FaultConfig::scenario("stress").expect("stress scenario exists");
    let mut cfg = base_config(20.0);
    cfg.faults = Some(FaultPlan::from_config(&fault_cfg, &network, 20.0));
    assert_shard_equivalence(&network, &txs, &cfg, 3);
}

#[test]
fn no_retry_fault_scenario_is_partition_independent() {
    let network = spider::topology::isp_topology(Amount::from_whole(300));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 200, 12.0);
    trace_cfg.seed = 9;
    let txs = generate(&trace_cfg, &isp_sizes());
    let mut fault_cfg = FaultConfig::scenario("outages").expect("outages scenario exists");
    fault_cfg.retry = None;
    let mut cfg = base_config(16.0);
    cfg.faults = Some(FaultPlan::from_config(&fault_cfg, &network, 16.0));
    assert_shard_equivalence(&network, &txs, &cfg, 9);
}

// ---------------------------------------------------------------------------
// Feature-parity scenarios: router queues, fees, congestion control, and
// rebalancing must all be partition-independent, alone and combined.
// ---------------------------------------------------------------------------

/// Enables every sequential-engine feature on a sharded config.
fn enable_all_features(cfg: &mut ShardedConfig, network: &Network) {
    cfg.policy = ShardPolicy::Queued;
    cfg.fees = Some(FeeSchedule::uniform(
        network,
        Amount::from_micros(10),
        1_000,
    ));
    cfg.congestion = Some(CongestionConfig::default());
    cfg.rebalance = Some(RebalancePolicy::aggressive());
}

#[test]
fn queued_policy_is_partition_independent() {
    // Tight capacity so units actually queue and drain across epochs.
    let network = spider::topology::isp_topology(Amount::from_whole(60));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 400, 12.0);
    trace_cfg.seed = 31;
    let txs = generate(&trace_cfg, &isp_sizes());
    let mut cfg = base_config(18.0);
    cfg.policy = ShardPolicy::Queued;
    assert_shard_equivalence(&network, &txs, &cfg, 31);
}

#[test]
fn fees_are_partition_independent() {
    let network = spider::topology::isp_topology(Amount::from_whole(250));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 300, 15.0);
    trace_cfg.seed = 37;
    let txs = generate(&trace_cfg, &isp_sizes());
    let mut cfg = base_config(20.0);
    cfg.fees = Some(FeeSchedule::uniform(
        &network,
        Amount::from_micros(25),
        2_500,
    ));
    assert_shard_equivalence(&network, &txs, &cfg, 37);
}

#[test]
fn congestion_control_is_partition_independent() {
    // Small windows force the AIMD gate to actually defer pumping.
    let network = spider::topology::isp_topology(Amount::from_whole(80));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 350, 12.0);
    trace_cfg.seed = 41;
    let txs = generate(&trace_cfg, &isp_sizes());
    let mut cfg = base_config(16.0);
    cfg.congestion = Some(CongestionConfig {
        initial_window: 2.0,
        max_window: 16.0,
        ..CongestionConfig::default()
    });
    assert_shard_equivalence(&network, &txs, &cfg, 41);
}

#[test]
fn rebalancing_is_partition_independent() {
    // Skewed traffic drains channels one way, so the aggressive policy
    // fires real withdraw/deposit pairs that must replicate across shards.
    let network = spider::topology::isp_topology(Amount::from_whole(70));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 400, 14.0);
    trace_cfg.seed = 43;
    let txs = generate(&trace_cfg, &isp_sizes());
    let mut cfg = base_config(20.0);
    cfg.rebalance = Some(RebalancePolicy::aggressive());
    assert_shard_equivalence(&network, &txs, &cfg, 43);
}

#[test]
fn all_features_are_partition_independent() {
    let network = spider::topology::isp_topology(Amount::from_whole(90));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 400, 14.0);
    trace_cfg.seed = 47;
    let txs = generate(&trace_cfg, &isp_sizes());
    let mut cfg = base_config(20.0);
    enable_all_features(&mut cfg, &network);
    assert_shard_equivalence(&network, &txs, &cfg, 47);
}

#[test]
fn all_features_under_faults_are_partition_independent() {
    let network = spider::topology::isp_topology(Amount::from_whole(90));
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 300, 14.0);
    trace_cfg.seed = 53;
    let txs = generate(&trace_cfg, &isp_sizes());
    let fault_cfg = FaultConfig::scenario("stress").expect("stress scenario exists");
    let mut cfg = base_config(20.0);
    enable_all_features(&mut cfg, &network);
    cfg.faults = Some(FaultPlan::from_config(&fault_cfg, &network, 20.0));
    assert_shard_equivalence(&network, &txs, &cfg, 53);
}

// ---------------------------------------------------------------------------
// Property-based sweep: random topologies × workloads × fault plans.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_scenarios_are_partition_independent(
        n in 8usize..28,
        p in 0.15f64..0.5,
        topo_seed in any::<u64>(),
        trace_seed in any::<u64>(),
        num_txs in 20usize..120,
        capacity in 20i64..400,
        // Fault plan, drawn flat (the vendored proptest stub has no
        // combinators): `fault_sel == 0` ≈ a third of cases means "no
        // faults" so the fault-free path stays covered.
        fault_sel in 0u8..3,
        fault_seed in any::<u64>(),
        outage_rate in 0.0f64..0.4,
        drop_prob in 0.0f64..0.15,
        grief_prob in 0.0f64..0.1,
        retry in any::<bool>(),
    ) {
        let network = spider::topology::erdos_renyi(
            n, p, Amount::from_whole(capacity), topo_seed,
        );
        if network.num_channels() == 0 {
            return Ok(());
        }
        let duration = 10.0;
        let mut trace_cfg = TraceConfig::isp_default(n, num_txs, duration);
        trace_cfg.seed = trace_seed;
        let txs = generate(&trace_cfg, &isp_sizes());
        let mut cfg = base_config(14.0);
        if fault_sel > 0 {
            let mut fc = FaultConfig {
                seed: fault_seed,
                channel_outage_rate: outage_rate,
                unit_drop_prob: drop_prob,
                grief_prob,
                ..FaultConfig::default()
            };
            if !retry {
                fc.retry = None;
            }
            cfg.faults = Some(FaultPlan::from_config(&fc, &network, 14.0));
        }
        assert_shard_equivalence(&network, &txs, &cfg, topo_seed ^ trace_seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Full-matrix generative sweep: random graph × workload × feature
    /// toggles (queued policy, fees, congestion, rebalancing) × fault plan.
    /// The 1-shard run is the sequential reference; 2- and 4-shard runs must
    /// reproduce it byte for byte with a clean per-epoch ledger audit.
    #[test]
    fn prop_sharded_parity_full_features(
        n in 8usize..24,
        p in 0.2f64..0.5,
        topo_seed in any::<u64>(),
        trace_seed in any::<u64>(),
        num_txs in 20usize..100,
        capacity in 20i64..200,
        queued in any::<bool>(),
        fees_on in any::<bool>(),
        fee_ppm in 100u32..5_000,
        congestion_on in any::<bool>(),
        initial_window in 1.0f64..8.0,
        rebalance_on in any::<bool>(),
        faults_on in any::<bool>(),
        fault_seed in any::<u64>(),
        outage_rate in 0.0f64..0.3,
        drop_prob in 0.0f64..0.1,
    ) {
        let network = spider::topology::erdos_renyi(
            n, p, Amount::from_whole(capacity), topo_seed,
        );
        if network.num_channels() == 0 {
            return Ok(());
        }
        let duration = 8.0;
        let mut trace_cfg = TraceConfig::isp_default(n, num_txs, duration);
        trace_cfg.seed = trace_seed;
        let txs = generate(&trace_cfg, &isp_sizes());
        let mut cfg = base_config(12.0);
        if queued {
            cfg.policy = ShardPolicy::Queued;
        }
        if fees_on {
            cfg.fees = Some(FeeSchedule::uniform(
                &network,
                Amount::from_micros(10),
                fee_ppm,
            ));
        }
        if congestion_on {
            cfg.congestion = Some(CongestionConfig {
                initial_window,
                ..CongestionConfig::default()
            });
        }
        if rebalance_on {
            cfg.rebalance = Some(RebalancePolicy::aggressive());
        }
        if faults_on {
            let fc = FaultConfig {
                seed: fault_seed,
                channel_outage_rate: outage_rate,
                unit_drop_prob: drop_prob,
                ..FaultConfig::default()
            };
            cfg.faults = Some(FaultPlan::from_config(&fc, &network, 12.0));
        }

        // Field-by-field comparison: the 1-shard reference against 2 and 4
        // shards (the deterministic scenarios cover 7).
        let (ref_report, ref_trace) = run_at(&network, &txs, &cfg, 1, topo_seed ^ trace_seed);
        prop_assert!(
            ref_report.audit_violations.is_empty(),
            "single-shard audit violations: {:?}",
            ref_report.audit_violations
        );
        let ref_json = serde_json::to_string_pretty(&ref_report).expect("report serializes");
        for shards in [2usize, 4] {
            let (report, trace) = run_at(&network, &txs, &cfg, shards, topo_seed ^ trace_seed);
            prop_assert!(
                report.audit_violations.is_empty(),
                "{}-shard audit violations: {:?}",
                shards,
                report.audit_violations
            );
            prop_assert_eq!(report.completed, ref_report.completed);
            prop_assert_eq!(report.attempted, ref_report.attempted);
            prop_assert_eq!(report.success_ratio(), ref_report.success_ratio());
            prop_assert_eq!(report.success_volume(), ref_report.success_volume());
            prop_assert_eq!(report.routing_fees_paid, ref_report.routing_fees_paid);
            prop_assert_eq!(
                report.rebalance.transactions,
                ref_report.rebalance.transactions
            );
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            prop_assert_eq!(&json, &ref_json, "SimReport diverged at {} shards", shards);
            prop_assert_eq!(&trace, &ref_trace, "trace diverged at {} shards", shards);
        }
    }
}
