//! Quickstart: build a small payment channel network, send a few payments
//! with Spider's waterfilling routing, and inspect the results.
//!
//! Run with: `cargo run --example quickstart`

use spider::prelude::*;

fn main() {
    // A 6-node ring with a chord — two channels of 100 tokens each side.
    let mut network = spider::topology::ring(6, Amount::from_whole(200));
    network
        .add_channel(NodeId(0), NodeId(3), Amount::from_whole(200))
        .expect("chord is a fresh channel");

    println!(
        "network: {} nodes, {} channels, {} total capacity",
        network.num_nodes(),
        network.num_channels(),
        network.total_capacity()
    );

    // Three payments, one of them larger than any single path can carry at
    // once — packet switching splits it into transaction units.
    let payments = vec![
        Transaction {
            id: PaymentId(0),
            src: NodeId(0),
            dst: NodeId(3),
            amount: Amount::from_whole(150),
            arrival: 0.1,
        },
        Transaction {
            id: PaymentId(1),
            src: NodeId(3),
            dst: NodeId(0),
            amount: Amount::from_whole(120),
            arrival: 0.2,
        },
        Transaction {
            id: PaymentId(2),
            src: NodeId(1),
            dst: NodeId(4),
            amount: Amount::from_whole(40),
            arrival: 0.3,
        },
    ];

    // Spider (waterfilling): each transaction unit takes the candidate path
    // with the most spendable balance, keeping channels balanced.
    let mut scheme = WaterfillingScheme::new();
    let mut config = SimConfig::new(30.0);
    config.deadline = 10.0;
    let report = spider::sim::run(&network, &payments, &mut scheme, &config);

    println!("\n{}", report.summary());
    println!(
        "delivered volume: {:.0} of {:.0} tokens",
        report.delivered_volume, report.attempted_volume
    );
    println!(
        "mean completion delay: {:.2}s",
        report.mean_completion_delay
    );
    println!(
        "final channel imbalance: {:.3}",
        report.final_mean_imbalance
    );

    assert_eq!(report.completed, 3, "all three payments should complete");
    println!("\nall payments delivered ✓");
}
