//! Network economics: routing fees, cheapest-path senders, and relay
//! revenue — the §7 discussion ("our routing algorithms suggest a way to
//! set routing fees ... with rational users that prefer cheaper routes").
//!
//! Two relays compete for the same corridor at different fee levels; we
//! watch rational senders pick the cheaper relay, the expensive relay cut
//! its price, and measure what each relay earns under simulated load.
//!
//! Run with: `cargo run --release --example network_economics`

use spider::prelude::*;
use spider::routing::fees::{cheapest_path, FeeSchedule};

fn main() {
    // Corridor: customers (0) pay merchants (3); two competing relays 1, 2.
    let mut network = spider::core::Network::new(4);
    let via_1a = network
        .add_channel(NodeId(0), NodeId(1), Amount::from_whole(4000))
        .unwrap();
    let via_1b = network
        .add_channel(NodeId(1), NodeId(3), Amount::from_whole(4000))
        .unwrap();
    let _via_2a = network
        .add_channel(NodeId(0), NodeId(2), Amount::from_whole(4000))
        .unwrap();
    let via_2b = network
        .add_channel(NodeId(2), NodeId(3), Amount::from_whole(4000))
        .unwrap();

    // Relay 1 charges 1%, relay 2 charges 0.2%.
    let mut fees = FeeSchedule::zero(&network);
    fees.set(via_1b, Amount::ZERO, 10_000); // 1%
    fees.set(via_2b, Amount::ZERO, 2_000); // 0.2%

    let probe = Amount::from_whole(100);
    let chosen =
        cheapest_path(&network, &fees, NodeId(0), NodeId(3), probe).expect("corridor is connected");
    println!("rational sender for a 100-token payment routes: {chosen}");
    assert!(chosen.nodes().contains(&NodeId(2)), "cheaper relay wins");
    println!(
        "  fees: via relay 1 = {}, via relay 2 = {}\n",
        fees.total_fee(
            &spider::core::Path::new(&network, vec![NodeId(0), NodeId(1), NodeId(3)]).unwrap(),
            probe
        ),
        fees.total_fee(&chosen, probe),
    );

    // Relay 1 matches the market.
    fees.set(via_1b, Amount::ZERO, 1_500); // undercuts at 0.15%
    let chosen = cheapest_path(&network, &fees, NodeId(0), NodeId(3), probe).unwrap();
    println!("after relay 1 cuts to 0.15%, senders route: {chosen}");
    assert!(chosen.nodes().contains(&NodeId(1)));

    // Simulated load with fees charged on every unit: measure sender cost.
    let payments: Vec<Transaction> = (0..200)
        .map(|i| Transaction {
            id: PaymentId(i),
            src: NodeId(0),
            dst: NodeId(3),
            amount: Amount::from_whole(20),
            arrival: 0.1 + i as f64 * 0.05,
        })
        .chain((0..200).map(|i| Transaction {
            id: PaymentId(200 + i),
            src: NodeId(3),
            dst: NodeId(0),
            amount: Amount::from_whole(20),
            arrival: 0.12 + i as f64 * 0.05,
        }))
        .collect();
    let mut config = SimConfig::new(30.0);
    config.fees = Some(fees);
    config.deadline = 10.0;
    let report = spider::sim::run(&network, &payments, &mut WaterfillingScheme::new(), &config);
    println!(
        "\nunder load ({} payments of 20 tokens each):",
        report.attempted
    );
    println!("  {}", report.summary());
    println!(
        "  senders paid {:.2} tokens in routing fees ({:.3}% of delivered volume)",
        report.routing_fees_paid,
        100.0 * report.routing_fees_paid / report.delivered_volume
    );
    assert!(report.routing_fees_paid > 0.0);

    // The flip side: relays must keep channels balanced to keep earning.
    // One-way corridors stop producing fee revenue once drained, which is
    // the economic version of Proposition 1.
    let one_way: Vec<Transaction> = (0..400)
        .map(|i| Transaction {
            id: PaymentId(i),
            src: NodeId(0),
            dst: NodeId(3),
            amount: Amount::from_whole(20),
            arrival: 0.1 + i as f64 * 0.05,
        })
        .collect();
    let drained = spider::sim::run(&network, &one_way, &mut WaterfillingScheme::new(), &config);
    println!(
        "\nsame corridor, one-way only ({} payments, same total volume): \
         delivered {:.0} of {:.0} tokens, fee revenue {:.2} vs {:.2} two-way \
         (channels drain — Proposition 1 in token form)",
        drained.attempted,
        drained.delivered_volume,
        drained.attempted_volume,
        drained.routing_fees_paid,
        report.routing_fees_paid
    );
    assert!(drained.success_volume() < 0.8 * report.success_volume());
    let _ = (via_1a,);
}
