//! Merchant scenario: many customers paying one merchant — the canonical
//! *DAG demand* that imbalance-aware routing cannot fix (Proposition 1),
//! and what on-chain rebalancing buys back.
//!
//! This is the workload the paper's introduction motivates: a pilot where
//! "over 100 merchants accept payments over the Lightning Network". When
//! money flows one way, channels toward the merchant drain; we measure the
//! drain, decompose the demand to show its circulation value is zero, and
//! sweep the fluid model's rebalancing budget to show throughput coming
//! back (§5.2.3).
//!
//! Run with: `cargo run --example merchant_payments`

use spider::opt::fluid::{enumerate_demand_paths, FluidProblem};
use spider::prelude::*;

fn main() {
    // Hub-and-spoke shop: merchant (node 0) behind a router (node 1),
    // customers 2..8 each with a channel to the router.
    let mut network = spider::core::Network::new(8);
    network
        .add_channel(NodeId(0), NodeId(1), Amount::from_whole(600))
        .unwrap();
    for c in 2..8u32 {
        network
            .add_channel(NodeId(1), NodeId(c), Amount::from_whole(200))
            .unwrap();
    }

    // Customers buy coffee all day: 6 customers × 10 payments × 20 tokens.
    let mut payments = Vec::new();
    let mut id = 0u64;
    for round in 0..10 {
        for c in 2..8u32 {
            payments.push(Transaction {
                id: PaymentId(id),
                src: NodeId(c),
                dst: NodeId(0),
                amount: Amount::from_whole(20),
                arrival: 0.5 + round as f64 * 2.0 + c as f64 * 0.05,
            });
            id += 1;
        }
    }

    let mut config = SimConfig::new(40.0);
    config.deadline = 10.0;
    let report = spider::sim::run(&network, &payments, &mut WaterfillingScheme::new(), &config);
    println!("one-way merchant traffic, even the best routing drains out:");
    println!("  {}", report.summary());
    println!(
        "  delivered {:.0} of {:.0} tokens before channels drained\n",
        report.delivered_volume, report.attempted_volume
    );

    // Why: the demand is a pure DAG — zero circulation (Proposition 1).
    let mut demand = DemandMatrix::new();
    for p in &payments {
        demand.add(p.src, p.dst, p.amount.as_tokens() / 40.0);
    }
    let dec = spider::opt::circulation::decompose(&demand);
    println!("payment-graph decomposition (Proposition 1):");
    println!("  total demand rate:   {:>6.1} tokens/s", demand.total());
    println!(
        "  max circulation:     {:>6.1} tokens/s  <- balanced-routable ceiling",
        dec.value
    );
    println!("  DAG remainder:       {:>6.1} tokens/s\n", dec.dag.total());
    assert_eq!(dec.value, 0.0, "merchant demand has no circulation");

    // What rebalancing buys back: the §5.2.3 frontier t(B).
    let paths = enumerate_demand_paths(&network, &demand, 4);
    let problem = FluidProblem::new(&network, &demand, &paths, 0.5);
    println!("fluid-model throughput vs on-chain rebalancing budget:");
    println!("  {:>10} {:>12}", "budget B", "t(B)");
    let full_budget = 2.0 * demand.total(); // 2 hops per payment -> 2 units of B each
    for budget in [0.0, 7.5, 15.0, 30.0, 45.0, full_budget] {
        let sol = problem.with_rebalancing_budget(budget);
        println!("  {:>10.1} {:>12.2}", budget, sol.throughput);
    }
    println!(
        "\nevery payment crosses 2 channels, so B = 2 x demand rate ({:.0}) \
         buys the full demand ✓",
        full_budget
    );

    // And the reverse flow fixes it for free: salaries flowing back out
    // turn the DAG into a circulation.
    let mut two_way = demand.clone();
    for c in 2..8u32 {
        two_way.add(NodeId(0), NodeId(c), demand.rate(NodeId(c), NodeId(0)));
    }
    let dec2 = spider::opt::circulation::decompose(&two_way);
    println!(
        "adding equal salary flows back out: circulation {:.1} of {:.1} (100%)",
        dec2.value,
        two_way.total()
    );
}
