//! Head-to-head comparison of all six routing schemes on a realistic
//! workload — a miniature of the paper's Fig. 6 experiment, runnable in a
//! couple of seconds.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use spider::prelude::*;
use spider::routing::{PathCache, PathStrategy};
use spider::workload::{demand_matrix, isp_sizes, SenderDistribution};

fn main() {
    // ISP-like topology, every channel at 30 000 tokens (the paper's Fig. 6
    // setting).
    let capacity = Amount::from_whole(30_000);
    let network = spider::topology::isp_topology(capacity);

    // 5 000 transactions over 60 seconds; skewed senders, uniform receivers,
    // Ripple-calibrated heavy-tailed sizes.
    let mut trace_cfg = TraceConfig::isp_default(network.num_nodes(), 5_000, 60.0);
    trace_cfg.senders = SenderDistribution::Exponential { scale: 8.0 };
    trace_cfg.seed = 7;
    let trace = spider::workload::generate(&trace_cfg, &isp_sizes());
    let config = SimConfig::new(60.0);

    println!(
        "ISP topology, {} payments over 60s, capacity {}/channel\n",
        trace.len(),
        capacity
    );
    println!(
        "{:<22} {:>13} {:>14} {:>10} {:>9}",
        "scheme", "success_ratio", "success_volume", "completed", "units"
    );

    let report_line = |report: SimReport| {
        println!(
            "{:<22} {:>13.3} {:>14.3} {:>10} {:>9}",
            report.scheme,
            report.success_ratio(),
            report.success_volume(),
            report.completed,
            report.units_sent
        );
        report
    };

    // Atomic baselines.
    report_line(spider::sim::run(
        &network,
        &trace,
        &mut SilentWhispersScheme::new(&network, 3),
        &config,
    ));
    report_line(spider::sim::run(
        &network,
        &trace,
        &mut SpeedyMurmursScheme::new(&network, 3),
        &config,
    ));
    report_line(spider::sim::run(
        &network,
        &trace,
        &mut MaxFlowScheme::new(),
        &config,
    ));

    // Packet-switched schemes.
    report_line(spider::sim::run(
        &network,
        &trace,
        &mut ShortestPathScheme::new(),
        &config,
    ));
    let wf = report_line(spider::sim::run(
        &network,
        &trace,
        &mut WaterfillingScheme::new(),
        &config,
    ));

    // Spider (LP): estimate the demand matrix from the trace, solve the
    // balanced fluid LP with the decentralized primal-dual algorithm over 4
    // edge-disjoint shortest paths per pair, route by the optimal weights.
    let demand = demand_matrix(&trace, 0.0, 60.0);
    let mut cache = PathCache::new(PathStrategy::EdgeDisjoint(4));
    let mut paths = Vec::new();
    for (s, d, _) in demand.entries() {
        paths.extend(cache.paths(&network, s, d).iter().map(|p| (**p).clone()));
    }
    let pd_config = spider::opt::PrimalDualConfig {
        alpha: 0.05,
        eta: 0.05,
        kappa: 0.05,
        max_iters: 5_000,
        ..Default::default()
    };
    let mut lp = LpScheme::solve_decentralized(&network, &demand, &paths, 0.5, &pd_config);
    let lp_report = report_line(spider::sim::run(&network, &trace, &mut lp, &config));

    println!(
        "\nSpider (waterfilling) delivered {:.0}% more volume than Spider (LP) here;",
        100.0 * (wf.success_volume() / lp_report.success_volume() - 1.0)
    );
    println!("the LP routes only the circulation component of the estimated demand.");
}
