//! On-chain rebalancing analysis (§5.2.3): how much throughput does a unit
//! of on-chain rebalancing buy, and when is it worth paying for?
//!
//! Reproduces both fluid-model views on the paper's 5-node example:
//! the priced objective (eqs. (6)–(11), throughput − γ·B) swept over γ, and
//! the budget frontier t(B) (eqs. (12)–(18)), checking monotonicity and
//! concavity numerically.
//!
//! Run with: `cargo run --example rebalancing`

use spider::opt::fluid::{enumerate_demand_paths, FluidProblem};
use spider::prelude::*;

fn main() {
    // The paper's Fig. 4 topology and demand (total 12, circulation 8).
    let mut network = spider::core::Network::new(5);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)] {
        network
            .add_channel(NodeId(a), NodeId(b), Amount::from_tokens(1e6))
            .unwrap();
    }
    let demand = DemandMatrix::fig4_example();
    let paths = enumerate_demand_paths(&network, &demand, 5);
    let problem = FluidProblem::new(&network, &demand, &paths, 1.0);

    println!(
        "demand: total {} tokens/s, circulation ceiling 8 (Prop. 1)\n",
        demand.total()
    );

    // Sweep the rebalancing price γ (eqs. 6-11).
    println!("priced rebalancing (γ = throughput needed to offset 1 unit of B):");
    println!(
        "{:>8} {:>12} {:>10} {:>12}",
        "γ", "throughput", "B", "objective"
    );
    for gamma in [0.0, 0.25, 0.5, 0.9, 1.1, 2.0] {
        let sol = problem.with_rebalancing(gamma);
        println!(
            "{:>8.2} {:>12.2} {:>10.2} {:>12.2}",
            gamma,
            sol.throughput,
            sol.total_rebalancing(),
            sol.objective
        );
    }
    println!("  γ < 1: cheap on-chain funds -> buy full demand (12)");
    println!("  γ > 1: rebalancing costs more than it earns -> circulation only (8)\n");

    // The budget frontier t(B) (eqs. 12-18).
    let budgets: Vec<f64> = (0..=10).map(|i| i as f64 * 0.8).collect();
    let curve = problem.throughput_curve(&budgets);
    println!("budget frontier t(B):");
    println!("{:>8} {:>12} {:>18}", "B", "t(B)", "marginal gain/unit");
    let mut prev: Option<(f64, f64)> = None;
    let mut last_gain = f64::INFINITY;
    for &(b, t) in &curve {
        let gain = match prev {
            Some((pb, pt)) if b > pb => (t - pt) / (b - pb),
            _ => f64::NAN,
        };
        if gain.is_finite() {
            assert!(
                gain <= last_gain + 1e-6,
                "t(B) must be concave: gain rose from {last_gain} to {gain}"
            );
            last_gain = gain;
        }
        println!(
            "{:>8.1} {:>12.3} {:>18}",
            b,
            t,
            if gain.is_nan() {
                "-".to_string()
            } else {
                format!("{gain:.3}")
            }
        );
        prev = Some((b, t));
    }
    println!("\nconcavity verified: each extra unit of on-chain budget buys less ✓");

    // Cross-check against the decentralized algorithm (§5.3) at one γ.
    let pd_config = spider::opt::PrimalDualConfig {
        gamma: Some(0.5),
        max_iters: 40_000,
        ..Default::default()
    };
    let pd = spider::opt::primal_dual::solve(&network, &demand, &paths, 1.0, &pd_config);
    let exact = problem.with_rebalancing(0.5);
    println!(
        "\nprimal-dual vs simplex at γ=0.5: throughput {:.2} vs {:.2}, B {:.2} vs {:.2}",
        pd.throughput,
        exact.throughput,
        pd.rebalancing.iter().map(|&(_, _, b)| b).sum::<f64>(),
        exact.total_rebalancing()
    );
}
